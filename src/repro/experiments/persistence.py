"""Persistence for experiment results.

Long sweeps are expensive; this module serialises a
:class:`~repro.experiments.runner.SweepResult` to JSON (losslessly for
the ratio data and the generation parameters) so partial runs can be
archived, reloaded for re-plotting, and merged — e.g. two 25-set runs
with disjoint seeds combine into one 50-set series.

It also implements the sweep **checkpoint** format: a JSON file keyed
by a digest of the experiment configuration, holding every completed
point (including its failure ledger). The format is crash-consistent
by construction:

* **Durable atomic writes.** Every checkpoint/sweep write goes to a
  temp file in the target directory, is flushed and ``fsync``\\ ed,
  renamed over the target with ``os.replace`` (atomic on POSIX), and
  the containing directory is ``fsync``\\ ed after the rename — so
  neither a process kill nor a power cut mid-write can leave a
  truncated target, and a completed rename survives the page cache.
  Transient filesystem errors are retried with a short bounded backoff
  before giving up.
* **Versioned payloads with per-point content digests.** Each stored
  point carries a SHA-256 digest of its canonical JSON
  (``checkpoint_version`` 2; version-1 files written by older builds
  still load, just without per-point verification). A reader can
  therefore detect a silently garbled point — torn sector, bit rot,
  a non-atomic writer — and, in tolerant mode, *skip exactly the
  corrupt points* so a resumed sweep re-solves only those instead of
  crashing or resuming from garbage.
* **Stale temp cleanup.** A crash between temp-write and rename leaves
  a ``*.tmp`` file behind; :func:`cleanup_stale_tmp` removes it on the
  next run's startup (the target file is still the last good state).

Fault-injection hooks (:mod:`repro.faults`) cover exactly these
hazards — ``checkpoint.torn``, ``fs.error`` — so the chaos suite can
prove the recovery paths instead of trusting them.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import Mapping

from repro.errors import ExperimentError, InjectedCrashError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.experiments.units import FailureRecord, PointResult, SweepResult
from repro.faults import injection as faults
from repro.generator.taskset_gen import GenerationConfig
from repro.obs import events as obs

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 2
#: Payload versions this build can read (1 = pre-digest format).
_SUPPORTED_CHECKPOINT_VERSIONS = (1, 2)
#: Durable-write attempts before a filesystem error is fatal.
_WRITE_ATTEMPTS = 3


def _config_to_dict(config: ExperimentConfig) -> dict:
    return {
        "name": config.name,
        "x_label": config.x_label,
        "sets_per_point": config.sets_per_point,
        "seed": config.seed,
        "protocols": list(config.protocols),
        "ls_policy": config.ls_policy,
        "method": config.method,
        "points": [
            {
                "x": point.x,
                "generation": dataclasses.asdict(point.generation),
            }
            for point in config.points
        ],
    }


def _config_from_dict(raw: dict) -> ExperimentConfig:
    return ExperimentConfig(
        name=raw["name"],
        x_label=raw["x_label"],
        points=tuple(
            SweepPoint(p["x"], GenerationConfig(**p["generation"]))
            for p in raw["points"]
        ),
        sets_per_point=raw["sets_per_point"],
        seed=raw["seed"],
        protocols=tuple(raw["protocols"]),
        ls_policy=raw["ls_policy"],
        method=raw["method"],
    )


def _point_to_dict(point: PointResult) -> dict:
    payload = {
        "x": point.x,
        "ratios": dict(point.ratios),
        "sets_evaluated": point.sets_evaluated,
        "elapsed_seconds": point.elapsed_seconds,
    }
    if point.failures:
        payload["failures"] = [dataclasses.asdict(f) for f in point.failures]
    if point.analysis_stats:
        payload["analysis_stats"] = dict(point.analysis_stats)
    return payload


def _point_from_dict(raw: dict) -> PointResult:
    return PointResult(
        x=raw["x"],
        ratios=raw["ratios"],
        sets_evaluated=raw["sets_evaluated"],
        elapsed_seconds=raw["elapsed_seconds"],
        failures=tuple(
            FailureRecord(**f) for f in raw.get("failures", ())
        ),
        analysis_stats=raw.get("analysis_stats", {}),
    )


def point_digest(payload: Mapping[str, object]) -> str:
    """Content digest of one serialised point (checkpoint v2 field)."""
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def sweep_to_dict(result: SweepResult) -> dict:
    """Plain-dict representation of a sweep result."""
    return {
        "format_version": _FORMAT_VERSION,
        "config": _config_to_dict(result.config),
        "points": [_point_to_dict(point) for point in result.points],
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Rebuild a sweep result from :func:`sweep_to_dict` output."""
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported sweep format {payload.get('format_version')!r}"
        )
    config = _config_from_dict(payload["config"])
    points = tuple(_point_from_dict(p) for p in payload["points"])
    return SweepResult(config=config, points=points)


# ----------------------------------------------------------------------
# durable filesystem primitives
# ----------------------------------------------------------------------
def _fsync_directory(directory: Path) -> None:
    """Persist a directory entry (the rename) past the page cache.

    Best-effort: some filesystems/platforms refuse to open or fsync a
    directory — there the rename's durability is whatever the OS
    gives, which is no worse than before.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _durable_replace(path: Path, text: str) -> None:
    """Atomically and durably replace ``path``'s content with ``text``.

    temp-write → flush → fsync(file) → ``os.replace`` → fsync(dir),
    retried up to :data:`_WRITE_ATTEMPTS` times on transient
    ``OSError`` with a short backoff. Raises
    :class:`~repro.errors.ExperimentError` when the filesystem keeps
    failing.
    """
    tmp = path.with_name(path.name + ".tmp")
    last_error: OSError | None = None
    for attempt in range(_WRITE_ATTEMPTS):
        try:
            spec = faults.fire("fs.error", op="replace")
            if spec is not None:
                raise OSError("injected transient filesystem error")
            with open(tmp, "w") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            _fsync_directory(path.parent)
            return
        except OSError as exc:
            last_error = exc
            obs.emit(
                "checkpoint.retry",
                attempt=attempt,
                error=type(exc).__name__,
                path=str(path),
            )
            if attempt < _WRITE_ATTEMPTS - 1:
                time.sleep(0.01 * 2**attempt)
    raise ExperimentError(
        f"cannot write {path} after {_WRITE_ATTEMPTS} attempts: {last_error}"
    ) from last_error


def cleanup_stale_tmp(path: str | Path) -> bool:
    """Remove a ``*.tmp`` file a crashed prior run left next to ``path``.

    A crash between temp-write and rename leaves the temp file behind
    while the target still holds the last durable state; the leftover
    is dead weight (and would shadow debugging), so runs clear it on
    startup. Returns whether anything was removed.
    """
    tmp = Path(path).with_name(Path(path).name + ".tmp")
    try:
        tmp.unlink()
    except FileNotFoundError:
        return False
    except OSError:
        return False
    return True


def save_sweep(result: SweepResult, path: str | Path) -> None:
    """Write a sweep result to a JSON file (durable atomic write)."""
    _durable_replace(
        Path(path), json.dumps(sweep_to_dict(result), indent=2)
    )


def load_sweep(path: str | Path) -> SweepResult:
    """Read a sweep result from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"sweep file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid sweep JSON: {exc}") from exc
    return sweep_from_dict(payload)


def merge_sweeps(a: SweepResult, b: SweepResult) -> SweepResult:
    """Pool two runs of the same experiment into one larger sample.

    The runs must share the experiment definition (name, sweep points,
    protocols, method) but should use different seeds — the merged
    ratios are the sample-size-weighted averages.
    """
    ca, cb = a.config, b.config
    if (
        ca.name != cb.name
        or ca.x_label != cb.x_label
        or [p.x for p in ca.points] != [p.x for p in cb.points]
        or ca.protocols != cb.protocols
        or ca.method != cb.method
    ):
        raise ExperimentError("cannot merge results of different experiments")
    if ca.seed == cb.seed:
        raise ExperimentError(
            "refusing to merge runs with the same seed: the samples are "
            "identical, not independent"
        )
    merged_points = []
    for pa, pb in zip(a.points, b.points):
        total = pa.sets_evaluated + pb.sets_evaluated
        merged_points.append(
            PointResult(
                x=pa.x,
                ratios={
                    protocol: (
                        pa.ratios[protocol] * pa.sets_evaluated
                        + pb.ratios[protocol] * pb.sets_evaluated
                    )
                    / total
                    for protocol in ca.protocols
                },
                sets_evaluated=total,
                elapsed_seconds=pa.elapsed_seconds + pb.elapsed_seconds,
                failures=pa.failures + pb.failures,
                analysis_stats={
                    name: pa.analysis_stats.get(name, 0)
                    + pb.analysis_stats.get(name, 0)
                    for name in {*pa.analysis_stats, *pb.analysis_stats}
                },
            )
        )
    merged_config = dataclasses.replace(
        ca, sets_per_point=ca.sets_per_point + cb.sets_per_point
    )
    return SweepResult(config=merged_config, points=tuple(merged_points))


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------
def config_digest(config: ExperimentConfig) -> str:
    """Stable digest identifying an experiment configuration.

    Two configs with the same digest generate the same task sets and
    evaluate the same protocols, so their per-point results are
    interchangeable — the property checkpoint resume relies on.
    """
    canonical = json.dumps(_config_to_dict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _apply_torn_write(
    spec: "faults.FaultSpec",
    path: Path,
    text: str,
    payload: dict,
    point: int | None,
) -> None:
    """Simulate a checkpoint write torn mid-flight, then "crash".

    ``lost``: the temp file is written but the rename never happens —
    the crash signature the atomic-write protocol is designed for.
    ``truncate``: the target itself ends up holding a truncated payload
    (what a *non*-atomic writer would leave). ``corrupt_point``: the
    write completes but one point's payload was silently garbled in
    flight — caught later by its content digest. All three end in an
    :class:`~repro.errors.InjectedCrashError` standing in for the
    process dying at this instant.
    """
    if spec.mode == "lost":
        path.with_name(path.name + ".tmp").write_text(text)
    elif spec.mode == "truncate":
        path.write_text(text[: max(1, len(text) // 2)])
    else:  # corrupt_point: valid JSON, one point's content garbled
        keys = sorted(payload["points"], key=int)
        key = str(point) if str(point) in payload["points"] else keys[-1]
        entry = payload["points"][key]
        entry["point"] = {**entry["point"], "x": -1.0, "ratios": {}}
        path.write_text(json.dumps(payload, indent=2))
    raise InjectedCrashError(
        f"injected crash: checkpoint write to {path} torn "
        f"(mode={spec.mode})"
    )


def save_checkpoint(
    path: str | Path,
    config: ExperimentConfig,
    completed: Mapping[int, PointResult],
    point: int | None = None,
) -> None:
    """Atomically and durably persist the completed points of a sweep.

    See the module docstring for the durability protocol. ``point`` is
    the just-completed point index — pure context, used to stamp
    injected faults and to target ``corrupt_point`` injections; it does
    not affect what is written.
    """
    path = Path(path)
    points_payload: dict[str, dict] = {}
    for index, point_result in sorted(completed.items()):
        data = _point_to_dict(point_result)
        points_payload[str(index)] = {
            "digest": point_digest(data),
            "point": data,
        }
    payload = {
        "checkpoint_version": _CHECKPOINT_VERSION,
        "config_digest": config_digest(config),
        "config": _config_to_dict(config),
        "points": points_payload,
    }
    text = json.dumps(payload, indent=2)
    spec = faults.fire("checkpoint.torn", point=point)
    if spec is not None and completed:
        _apply_torn_write(spec, path, text, payload, point)
    _durable_replace(path, text)


def _read_checkpoint_payload(
    path: Path, tolerant: bool
) -> "tuple[dict | None, list[str]]":
    """Parse a checkpoint file; ``(None, problems)`` when unusable."""
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        message = f"unreadable checkpoint {path}: {exc}"
        if tolerant:
            return None, [message]
        raise ExperimentError(message) from exc
    version = payload.get("checkpoint_version")
    if version not in _SUPPORTED_CHECKPOINT_VERSIONS:
        message = (
            f"unsupported checkpoint version {version!r} in {path} "
            f"(supported: {list(_SUPPORTED_CHECKPOINT_VERSIONS)})"
        )
        if tolerant:
            return None, [message]
        raise ExperimentError(message)
    return payload, []


def _points_from_payload(
    payload: dict, path: Path, tolerant: bool
) -> "tuple[dict[int, PointResult], list[str]]":
    """Decode and digest-verify a payload's points.

    Version-2 entries (``{"digest": ..., "point": {...}}``) are
    verified against their content digest; version-1 entries are plain
    point dicts and pass through unverified. In tolerant mode a corrupt
    point is *skipped* (reported in the problem list) so the caller
    re-solves exactly the damaged points; in strict mode it raises.
    """
    points: dict[int, PointResult] = {}
    problems: list[str] = []
    for index, entry in payload.get("points", {}).items():
        versioned = (
            isinstance(entry, dict) and "digest" in entry and "point" in entry
        )
        data = entry["point"] if versioned else entry
        if versioned and point_digest(data) != entry["digest"]:
            message = (
                f"checkpoint {path}: point {index} failed its content "
                f"digest — skipping (will be re-solved)"
            )
            if not tolerant:
                raise ExperimentError(message)
            problems.append(message)
            continue
        try:
            points[int(index)] = _point_from_dict(data)
        except (KeyError, TypeError, ValueError) as exc:
            message = (
                f"checkpoint {path}: point {index} is undecodable "
                f"({type(exc).__name__}: {exc}) — skipping"
            )
            if not tolerant:
                raise ExperimentError(message) from exc
            problems.append(message)
    return points, problems


def load_checkpoint(
    path: str | Path,
    config: ExperimentConfig,
    missing_ok: bool = False,
    tolerant: bool = False,
) -> dict[int, PointResult]:
    """Load the completed points of a checkpoint for ``config``.

    Raises :class:`ExperimentError` when the file belongs to a
    different configuration (digest mismatch — resuming against the
    wrong checkpoint would silently mix incompatible samples), and, in
    strict mode, when it is unreadable, an unsupported version, or any
    point fails its content digest. With ``tolerant=True`` unreadable
    files count as empty and corrupt points are skipped (the resume
    path then re-solves exactly those); use
    :func:`load_checkpoint_recovering` to also see what was skipped.
    """
    points, _ = load_checkpoint_recovering(
        path, config, missing_ok=missing_ok, tolerant=tolerant
    )
    return points


def load_checkpoint_recovering(
    path: str | Path,
    config: ExperimentConfig,
    missing_ok: bool = True,
    tolerant: bool = True,
) -> "tuple[dict[int, PointResult], list[str]]":
    """Like :func:`load_checkpoint`, returning recovery problems too.

    The second element lists every corruption the loader healed around
    (unreadable file, digest-failed or undecodable points); empty for
    a pristine checkpoint.
    """
    path = Path(path)
    if not path.exists():
        if missing_ok:
            return {}, []
        raise ExperimentError(f"checkpoint file not found: {path}")
    payload, problems = _read_checkpoint_payload(path, tolerant)
    if payload is None:
        return {}, problems
    expected = config_digest(config)
    found = payload.get("config_digest")
    if found != expected:
        # Never healed around, even in tolerant mode: a wrong-config
        # checkpoint is caller error, not corruption.
        raise ExperimentError(
            f"checkpoint {path} belongs to a different experiment "
            f"(config digest {found!r} != {expected!r}); delete it or "
            f"point --checkpoint elsewhere"
        )
    points, point_problems = _points_from_payload(payload, path, tolerant)
    return points, problems + point_problems


def read_checkpoint_points(
    path: str | Path, tolerant: bool = False
) -> dict[int, PointResult]:
    """Load a checkpoint's points without knowing its configuration.

    ``repro profile --checkpoint`` reconciles a trace against whatever
    run produced the checkpoint, so unlike :func:`load_checkpoint`
    there is no expected config to verify the digest against — payload
    version, JSON validity, and per-point content digests are still
    enforced (or healed around with ``tolerant=True``).
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"checkpoint file not found: {path}")
    payload, _ = _read_checkpoint_payload(path, tolerant)
    if payload is None:
        return {}
    points, _ = _points_from_payload(payload, path, tolerant)
    return points
