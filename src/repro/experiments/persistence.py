"""Persistence for experiment results.

Long sweeps are expensive; this module serialises a
:class:`~repro.experiments.runner.SweepResult` to JSON (losslessly for
the ratio data and the generation parameters) so partial runs can be
archived, reloaded for re-plotting, and merged — e.g. two 25-set runs
with disjoint seeds combine into one 50-set series.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig, SweepPoint
from repro.experiments.runner import PointResult, SweepResult
from repro.generator.taskset_gen import GenerationConfig

_FORMAT_VERSION = 1


def sweep_to_dict(result: SweepResult) -> dict:
    """Plain-dict representation of a sweep result."""
    config = result.config
    return {
        "format_version": _FORMAT_VERSION,
        "config": {
            "name": config.name,
            "x_label": config.x_label,
            "sets_per_point": config.sets_per_point,
            "seed": config.seed,
            "protocols": list(config.protocols),
            "ls_policy": config.ls_policy,
            "method": config.method,
            "points": [
                {
                    "x": point.x,
                    "generation": dataclasses.asdict(point.generation),
                }
                for point in config.points
            ],
        },
        "points": [
            {
                "x": point.x,
                "ratios": dict(point.ratios),
                "sets_evaluated": point.sets_evaluated,
                "elapsed_seconds": point.elapsed_seconds,
            }
            for point in result.points
        ],
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Rebuild a sweep result from :func:`sweep_to_dict` output."""
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ExperimentError(
            f"unsupported sweep format {payload.get('format_version')!r}"
        )
    raw = payload["config"]
    config = ExperimentConfig(
        name=raw["name"],
        x_label=raw["x_label"],
        points=tuple(
            SweepPoint(p["x"], GenerationConfig(**p["generation"]))
            for p in raw["points"]
        ),
        sets_per_point=raw["sets_per_point"],
        seed=raw["seed"],
        protocols=tuple(raw["protocols"]),
        ls_policy=raw["ls_policy"],
        method=raw["method"],
    )
    points = tuple(
        PointResult(
            x=p["x"],
            ratios=p["ratios"],
            sets_evaluated=p["sets_evaluated"],
            elapsed_seconds=p["elapsed_seconds"],
        )
        for p in payload["points"]
    )
    return SweepResult(config=config, points=points)


def save_sweep(result: SweepResult, path: str | Path) -> None:
    """Write a sweep result to a JSON file."""
    Path(path).write_text(json.dumps(sweep_to_dict(result), indent=2))


def load_sweep(path: str | Path) -> SweepResult:
    """Read a sweep result from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"sweep file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"invalid sweep JSON: {exc}") from exc
    return sweep_from_dict(payload)


def merge_sweeps(a: SweepResult, b: SweepResult) -> SweepResult:
    """Pool two runs of the same experiment into one larger sample.

    The runs must share the experiment definition (name, sweep points,
    protocols, method) but should use different seeds — the merged
    ratios are the sample-size-weighted averages.
    """
    ca, cb = a.config, b.config
    if (
        ca.name != cb.name
        or ca.x_label != cb.x_label
        or [p.x for p in ca.points] != [p.x for p in cb.points]
        or ca.protocols != cb.protocols
        or ca.method != cb.method
    ):
        raise ExperimentError("cannot merge results of different experiments")
    if ca.seed == cb.seed:
        raise ExperimentError(
            "refusing to merge runs with the same seed: the samples are "
            "identical, not independent"
        )
    merged_points = []
    for pa, pb in zip(a.points, b.points):
        total = pa.sets_evaluated + pb.sets_evaluated
        merged_points.append(
            PointResult(
                x=pa.x,
                ratios={
                    protocol: (
                        pa.ratios[protocol] * pa.sets_evaluated
                        + pb.ratios[protocol] * pb.sets_evaluated
                    )
                    / total
                    for protocol in ca.protocols
                },
                sets_evaluated=total,
                elapsed_seconds=pa.elapsed_seconds + pb.elapsed_seconds,
            )
        )
    merged_config = dataclasses.replace(
        ca, sets_per_point=ca.sets_per_point + cb.sets_per_point
    )
    return SweepResult(config=merged_config, points=tuple(merged_points))
