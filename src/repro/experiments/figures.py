"""SVG sweep figures (no plotting dependencies).

The Fig. 2 family renders as hand-assembled SVG, one line series per
protocol over the sweep's x-axis — the publication-quality counterpart
of :func:`repro.experiments.report.ascii_plot`, and deliberately
k-protocol: the series list comes from ``config.protocols``, never
from a wired-in three-name tuple. Colours reuse the Okabe-Ito palette
of :mod:`repro.sim.svg` so trace and sweep figures stay visually
consistent.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.experiments.runner import SweepResult

#: Colour-blind-friendly categorical palette (Okabe-Ito), shared with
#: the trace SVGs.
_PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
)

#: Dash patterns cycled after the palette wraps, so >8 protocols stay
#: distinguishable.
_DASHES = ("", "6,3", "2,2", "8,3,2,3")

_LEFT = 64
_TOP = 28
_RIGHT = 20
_AXIS_H = 40
_LEGEND_ROW = 18


def sweep_to_svg(
    result: SweepResult,
    width: float = 640.0,
    height: float = 420.0,
) -> str:
    """Render a sweep as an SVG line chart (ratio in [0, 1] vs x).

    One polyline + point markers per protocol in
    ``result.config.protocols`` order, with a legend row per protocol.
    """
    protocols = list(result.config.protocols)
    xs = result.x_values
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0
    legend_h = _LEGEND_ROW * len(protocols) + 10
    plot_h = height - _TOP - _AXIS_H - legend_h
    plot_w = width - _LEFT - _RIGHT

    def px(x: float) -> float:
        return _LEFT + (x - x_min) / span * plot_w

    def py(ratio: float) -> float:
        return _TOP + (1.0 - ratio) * plot_h

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}" '
        f'font-family="Helvetica, Arial, sans-serif" font-size="11">',
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
        f'<text x="{width / 2:.1f}" y="16" text-anchor="middle" '
        f'font-size="13">{escape(result.config.name)}: schedulability '
        f"ratio vs {escape(result.config.x_label)}</text>",
    ]

    # Gridlines and y labels at 0, 0.25, ..., 1.
    for i in range(5):
        ratio = i / 4.0
        y = py(ratio)
        parts.append(
            f'<line x1="{_LEFT}" y1="{y:.1f}" x2="{_LEFT + plot_w:.1f}" '
            f'y2="{y:.1f}" stroke="#ddd" stroke-width="0.7"/>'
        )
        parts.append(
            f'<text x="{_LEFT - 8}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="10">{ratio:g}</text>'
        )
    # x axis ticks at every sweep point.
    axis_y = _TOP + plot_h
    for x in xs:
        parts.append(
            f'<line x1="{px(x):.1f}" y1="{axis_y:.1f}" x2="{px(x):.1f}" '
            f'y2="{axis_y + 4:.1f}" stroke="#333" stroke-width="0.8"/>'
        )
        parts.append(
            f'<text x="{px(x):.1f}" y="{axis_y + 16:.1f}" '
            f'text-anchor="middle" font-size="10">{x:g}</text>'
        )
    parts.append(
        f'<text x="{_LEFT + plot_w / 2:.1f}" y="{axis_y + 30:.1f}" '
        f'text-anchor="middle" font-size="11">'
        f"{escape(result.config.x_label)}</text>"
    )

    # One series per protocol.
    for i, protocol in enumerate(protocols):
        color = _PALETTE[i % len(_PALETTE)]
        dash = _DASHES[(i // len(_PALETTE)) % len(_DASHES)]
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        series = result.series(protocol)
        points = " ".join(f"{px(x):.1f},{py(r):.1f}" for x, r in series)
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            f'stroke-width="1.8"{dash_attr}/>'
        )
        for x, r in series:
            parts.append(
                f'<circle cx="{px(x):.1f}" cy="{py(r):.1f}" r="2.6" '
                f'fill="{color}"><title>{escape(protocol)} '
                f"{result.config.x_label}={x:g}: {r:.3f}</title></circle>"
            )
        # Legend row.
        ly = axis_y + _AXIS_H + _LEGEND_ROW * i + 4
        parts.append(
            f'<line x1="{_LEFT}" y1="{ly - 4:.1f}" x2="{_LEFT + 26}" '
            f'y2="{ly - 4:.1f}" stroke="{color}" '
            f'stroke-width="1.8"{dash_attr}/>'
        )
        parts.append(
            f'<text x="{_LEFT + 34}" y="{ly:.1f}" font-size="10">'
            f"{escape(protocol)}</text>"
        )

    parts.append("</svg>")
    return "\n".join(parts)


def save_sweep_svg(
    result: SweepResult, path: str | Path, width: float = 640.0,
    height: float = 420.0,
) -> None:
    """Render a sweep figure and write it to ``path``."""
    Path(path).write_text(sweep_to_svg(result, width=width, height=height))
