"""Reporting: CSV export, tables, and ASCII plots of sweep results.

No plotting library is available offline, so figures are rendered as
fixed-width ASCII charts — one mark per protocol — which is enough to
eyeball the crossovers and gaps the paper describes.
"""

from __future__ import annotations

import io
from typing import Iterable

from repro.experiments.runner import PointResult, SweepResult

#: Plot marks per protocol, in drawing order (later overdraws earlier).
_MARKS = {
    "nps": "n",
    "nps_carry": "n",
    "wasly": "w",
    "proposed": "P",
    "threshold": "t",
    "regulated": "r",
}


def baseline_protocol(protocols: "Iterable[str]") -> str:
    """The protocol advantage gaps are reported against.

    ``"proposed"`` when it is in the sweep (the paper's framing);
    otherwise the last protocol of the tuple — never a hard-coded name,
    so k-protocol sweeps without ``"proposed"`` still report gaps
    instead of crashing.
    """
    names = list(protocols)
    if not names:
        raise ValueError("no protocols to pick a baseline from")
    return "proposed" if "proposed" in names else names[-1]


def sweep_to_csv(result: SweepResult) -> str:
    """Serialise a sweep as CSV (x column + one column per protocol)."""
    protocols = list(result.config.protocols)
    out = io.StringIO()
    out.write(",".join([result.config.x_label, *protocols, "sets", "seconds"]))
    out.write("\n")
    for point in result.points:
        row = [f"{point.x:g}"]
        row += [f"{point.ratios[p]:.4f}" for p in protocols]
        row.append(str(point.sets_evaluated))
        row.append(f"{point.elapsed_seconds:.2f}")
        out.write(",".join(row) + "\n")
    return out.getvalue()


def aggregate_analysis_stats(points: "Iterable[PointResult]") -> dict[str, int]:
    """Summed per-point analysis-cache counters of a run.

    The same totals a trace's ``cache.*`` events add up to (see
    :func:`repro.obs.profile.reconcile`) — shared here so the sweep
    table and the trace reconciliation agree on the arithmetic.
    """
    stats: dict[str, int] = {}
    for point in points:
        for name, value in point.analysis_stats.items():
            stats[name] = stats.get(name, 0) + value
    return stats


def render_sweep_table(result: SweepResult, baseline: str | None = None) -> str:
    """Human-readable table of the sweep's schedulability ratios.

    ``baseline`` names the protocol the advantage lines compare
    against; ``None`` picks :func:`baseline_protocol` (``"proposed"``
    when swept, else the last protocol).
    """
    protocols = list(result.config.protocols)
    if baseline is None:
        baseline = baseline_protocol(protocols)
    header = f"{result.config.x_label:>8} | " + " | ".join(
        f"{p:>9}" for p in protocols
    )
    lines = [f"experiment {result.config.name}", header, "-" * len(header)]
    for point in result.points:
        cells = " | ".join(f"{point.ratios[p]:>9.3f}" for p in protocols)
        lines.append(f"{point.x:>8g} | {cells}")
    for protocol in protocols:
        if protocol == baseline:
            continue
        gap = result.advantage(baseline, protocol)
        lines.append(
            f"max advantage of {baseline} over {protocol}: {gap:+.3f}"
        )
    if result.failures:
        lines.append(
            f"failures: {len(result.failures)} taskset/protocol pairs "
            "(see failure ledger)"
        )
    stats = aggregate_analysis_stats(result.points)
    memory_hits = stats.get("hits", 0)
    persistent_hits = stats.get("persistent.hits", 0)
    lookups = memory_hits + persistent_hits + stats.get("misses", 0)
    if lookups:
        hit_rate = (memory_hits + persistent_hits) / lookups
        tiers = f"{memory_hits} memory"
        if persistent_hits or stats.get("persistent.corrupt", 0):
            tiers += f" + {persistent_hits} persistent"
        if stats.get("persistent.corrupt", 0):
            tiers += f" ({stats['persistent.corrupt']} corrupt dropped)"
        lines.append(
            f"analysis cache: {tiers} hits / {lookups} "
            f"lookups ({hit_rate:.0%}), "
            f"{stats.get('milp_solves', 0)} MILP + "
            f"{stats.get('lp_solves', 0)} LP solves, "
            f"{stats.get('milp_warm_starts', 0)} warm starts"
        )
        lines.append(
            f"screens: {stats.get('closed_form_screens', 0)} closed-form + "
            f"{stats.get('lp_screens', 0)} LP, "
            f"{stats.get('screened_out', 0)} integer solves screened out"
        )
    served = stats.get("unit_store.hits", 0)
    if served:
        lines.append(
            f"unit store: {served} unit(s) served without analysis"
        )
    return "\n".join(lines)


def render_failure_ledger(result: SweepResult) -> str:
    """Human-readable failure ledger of a sweep (empty string if clean)."""
    failures = result.failures
    if not failures:
        return ""
    lines = [
        f"failure ledger ({len(failures)} entries)",
        f"{result.config.x_label:>8} | {'protocol':>9} | {'seed':>6} | "
        f"{'set':>4} | {'digest':>16} | error",
    ]
    lines.append("-" * len(lines[-1]))
    for f in failures:
        degraded = f" [degradation={f.degradation}]" if f.degradation else ""
        lines.append(
            f"{f.x:>8g} | {f.protocol:>9} | {f.seed:>6} | "
            f"{f.taskset_index:>4} | {f.taskset_digest:>16} | "
            f"{f.error_type}: {f.message}{degraded}"
        )
    return "\n".join(lines)


def ascii_plot(
    result: SweepResult, width: int = 64, height: int = 16
) -> str:
    """Render the sweep as an ASCII chart (ratio on y in [0, 1])."""
    grid = [[" "] * width for _ in range(height)]
    xs = result.x_values
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1.0

    def col(x: float) -> int:
        return min(width - 1, int(round((x - x_min) / span * (width - 1))))

    def row(ratio: float) -> int:
        return min(height - 1, int(round((1.0 - ratio) * (height - 1))))

    for protocol in result.config.protocols:
        mark = _MARKS.get(protocol, protocol[0].upper())
        for x, ratio in result.series(protocol):
            grid[row(ratio)][col(x)] = mark

    lines = [f"{result.config.name}: schedulability ratio vs {result.config.x_label}"]
    for r, cells in enumerate(grid):
        ratio_label = 1.0 - r / (height - 1)
        lines.append(f"{ratio_label:>5.2f} |" + "".join(cells))
    lines.append("      +" + "-" * width)
    lines.append(f"       {x_min:<10g}{'':^{max(0, width - 22)}}{x_max:>10g}")
    legend = ", ".join(
        f"{_MARKS.get(p, p[0].upper())}={p}" for p in result.config.protocols
    )
    lines.append(f"       marks: {legend}")
    return "\n".join(lines)
