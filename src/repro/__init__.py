"""repro — reproduction of *Predictable Memory-CPU Co-Scheduling with
Support for Latency-Sensitive Tasks* (Casini et al., DAC 2020).

The package implements the paper's protocol (rules R1-R6), its MILP
worst-case-delay analysis, the two baselines it is evaluated against
(classical non-preemptive scheduling and the protocol of Wasly &
Pellizzoni [3]), a protocol zoo of further comparison points behind a
registry (limited preemption via preemption thresholds, memory
bandwidth regulation), a discrete-event simulator of each, the
workload generator of Sec. VII, and the experiment harness
regenerating the paper's figures.

Quickstart::

    from repro import Task, TaskSet, is_schedulable, registered_protocols

    ts = TaskSet.from_parameters([
        # (name,  C,   l,   u,   T,   D)
        ("cam",  2.0, 0.4, 0.4, 12.0, 10.0),
        ("ctrl", 1.0, 0.2, 0.2, 10.0,  4.0),
        ("log",  4.0, 0.8, 0.8, 40.0, 40.0),
    ])
    for protocol in registered_protocols():
        print(protocol, is_schedulable(ts, protocol))
"""

from repro.analysis import (
    AnalysisOptions,
    NpsAnalysis,
    ProposedAnalysis,
    RegulatedAnalysis,
    RegulationConfig,
    TaskResult,
    TaskSetResult,
    ThresholdAnalysis,
    WaslyAnalysis,
    analyze_taskset,
    greedy_ls_assignment,
    is_schedulable,
    register_protocol,
    registered_protocols,
)
from repro.curves import (
    ArrivalCurve,
    BurstyArrival,
    PeriodicJitterArrival,
    SporadicArrival,
)
from repro.chains import TaskChain, chain_reaction_bound
from repro.errors import ReproError
from repro.io import load_taskset, save_taskset
from repro.model import (
    Platform,
    Task,
    TaskSet,
    partition_tasks,
)
from repro.model.priorities import (
    audsley_opa,
    deadline_monotonic,
    opa_with_analysis,
    rate_monotonic,
)

__version__ = "1.0.0"

__all__ = [
    "Task",
    "TaskSet",
    "Platform",
    "partition_tasks",
    "TaskChain",
    "chain_reaction_bound",
    "load_taskset",
    "save_taskset",
    "deadline_monotonic",
    "rate_monotonic",
    "audsley_opa",
    "opa_with_analysis",
    "ArrivalCurve",
    "SporadicArrival",
    "PeriodicJitterArrival",
    "BurstyArrival",
    "AnalysisOptions",
    "TaskResult",
    "TaskSetResult",
    "NpsAnalysis",
    "WaslyAnalysis",
    "ProposedAnalysis",
    "ThresholdAnalysis",
    "RegulatedAnalysis",
    "RegulationConfig",
    "register_protocol",
    "registered_protocols",
    "analyze_taskset",
    "is_schedulable",
    "greedy_ls_assignment",
    "ReproError",
    "__version__",
]
