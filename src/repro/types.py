"""Shared type aliases and small helper utilities.

Time is modelled as ``float`` throughout the library. The analyses and
the simulator never subtract nearly-equal large numbers, so plain IEEE
doubles with an explicit tolerance (:data:`TIME_EPS`) are sufficient
and keep the MILP interface (NumPy arrays) natural.
"""

from __future__ import annotations

from typing import TypeAlias

#: A point in time or a duration, in milliseconds (unit-free in practice).
Time: TypeAlias = float

#: A task priority; *lower* numeric value means *higher* priority,
#: matching the convention of most real-time operating systems.
Priority: TypeAlias = int

#: Identifier of a task inside a :class:`repro.model.TaskSet`.
TaskId: TypeAlias = int

#: Absolute tolerance used for time comparisons across the library.
TIME_EPS: float = 1e-9


def time_eq(a: Time, b: Time, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when two time values are equal within tolerance."""
    return abs(a - b) <= eps


def time_leq(a: Time, b: Time, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when ``a <= b`` within tolerance."""
    return a <= b + eps


def time_lt(a: Time, b: Time, eps: float = TIME_EPS) -> bool:
    """Return ``True`` when ``a < b`` beyond tolerance."""
    return a < b - eps
