"""Structured run-observability events: schema, recorder, JSONL sink.

A *trace* is a JSONL file of flat event records describing where a run
spent its time and which code paths it exercised — task-set
generation, response-time fixpoint iterations, MILP/LP solves,
analysis-cache traffic, greedy LS rounds, resilience retries/fallbacks,
and worker lifecycle. Three pieces cooperate:

* :class:`EventRecorder` — an in-memory buffer with monotonic
  timestamps (``time.perf_counter``; wall-clock reads are banned in
  worker-reachable code, see ``repro lint``). Instrumented code emits
  through the module-level :func:`emit`/:func:`span` helpers, which are
  no-ops unless a recorder is installed with :func:`recording` — the
  hot paths pay one list lookup when tracing is off.
* :class:`TraceWriter` — the **single writer** of a trace file. Only
  the parent experiment process ever holds one (the same discipline as
  sweep checkpoints): workers buffer events in their own recorder and
  ship them back inside their unit results; the parent stamps the
  run/point/unit correlation ids and appends them in task-set order,
  so a ``--jobs N`` trace is identical in content and order to the
  sequential one, timestamps aside.
* :data:`EVENT_SCHEMA` / :func:`validate_event` — the record contract.
  Every line a :class:`TraceWriter` emits validates; readers
  (:mod:`repro.obs.profile`, the CI perf-smoke job) re-validate.

Event names are dot-namespaced. Names matching
:data:`RUNTIME_PREFIXES` describe *runtime* behaviour (which process
generated a sample, how often a solver was retried, when checkpoints
were written) whose event counts legitimately vary with worker count
and machine load; every other name is a *work* event whose aggregate
counts are deterministic — identical between ``--jobs 1`` and
``--jobs N`` runs of the same configuration.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Callable, Iterator, Mapping

from repro.errors import ObservabilityError

#: Version stamped into every event record (the ``v`` field).
EVENT_VERSION = 1

#: Event-name prefixes whose counts are runtime-dependent (worker
#: placement, memoisation, retries, wall-clock pressure) and therefore
#: excluded from the determinism contract and comparison.
RUNTIME_PREFIXES = (
    "worker.",
    "gen.",
    "resilience.",
    "checkpoint.",
    "highs.",
    "fault.",
    "service.",
)

#: Per-event-name payload contract: every event name the project may
#: emit, mapped to the keys its ``f`` payload may carry and their
#: types. Type strings are ``str``/``int``/``number``/``bool``/
#: ``object``; a ``?`` suffix marks a key that may be absent or null.
#: The ``trace-contract`` lint rule statically resolves every
#: ``emit()``/``span()`` call site in ``src/repro`` against this table
#: — an emit of an uncatalogued name, an uncatalogued payload key, or
#: a catalogued name nothing emits all fail ``repro lint``.
EVENT_NAMES: dict[str, dict[str, str]] = {
    # run / point lifecycle (parent process)
    "run.start": {"points": "int", "sets": "int", "jobs": "int",
                  "resumed": "int"},
    "run.end": {},
    "point.end": {"x": "number", "failures": "int"},
    "gen.tasksets": {"sets": "int"},
    # per-unit protocol evaluation
    "protocol.verdict": {"protocol": "str", "schedulable": "bool"},
    "protocol.failure": {"protocol": "str", "error": "str"},
    # analysis: fixpoint iterations, solves, screens
    "fixpoint.iteration": {"mode": "str", "iteration": "int"},
    "solve": {"mode": "str", "method": "str", "status": "str",
              "degradation": "int", "rows": "int?", "vars": "int?"},
    "solve.screen": {"mode": "str", "status": "str", "rows": "int?",
                     "vars": "int?"},
    "solve.screen_batch": {"size": "int"},
    "milp.incremental.update": {"mode": "str"},
    "milp.incremental.rebuild": {"mode": "str"},
    "ls.round": {"round": "int", "marks": "int"},
    # analysis-cache traffic (names mirror AnalysisCache.COUNTER_NAMES)
    "cache.hits": {"amount": "int"},
    "cache.misses": {"amount": "int"},
    "cache.persistent.hits": {"amount": "int"},
    "cache.persistent.corrupt": {"amount": "int"},
    "cache.milp_solves": {"amount": "int"},
    "cache.lp_solves": {"amount": "int"},
    "cache.milp_warm_starts": {"amount": "int"},
    "cache.closed_form_screens": {"amount": "int"},
    "cache.lp_screens": {"amount": "int"},
    "cache.screened_out": {"amount": "int"},
    "cache.unit_store.hits": {"amount": "int"},
    # worker lifecycle / crash recovery
    "worker.unit": {"pid": "int"},
    "worker.requeued": {"attempt": "int", "error": "str"},
    "worker.quarantined": {"crashes": "int", "error": "str"},
    "worker.pool_broken": {"suspects": "int"},
    "worker.crash": {"attempt": "int", "crashes": "int"},
    "worker.markers_swept": {"dirs": "int"},
    # sweep service (coordinator-side lifecycle; see repro.service)
    "service.start": {"port": "int", "workers": "int"},
    "service.submit": {"points": "int", "units": "int", "resumed": "int"},
    "service.unit.served": {},
    "service.unit.dispatched": {"worker": "int"},
    "service.worker.joined": {"worker": "int"},
    "service.worker.left": {"worker": "int", "inflight": "int"},
    "service.sweep.done": {"served": "int", "dispatched": "int"},
    # checkpoints
    "checkpoint.saved": {},
    "checkpoint.recovered": {"detail": "str"},
    "checkpoint.retry": {"attempt": "int", "error": "str", "path": "str"},
    # resilient solver backend
    "resilience.watchdog": {"model": "str", "backend": "str",
                            "limit": "number"},
    "resilience.retry": {"model": "str", "attempt": "int", "error": "str"},
    "resilience.fallback": {"model": "str", "level": "str"},
    "resilience.closed_form": {"model": "str"},
    "highs.retry": {"model": "str", "options": "object"},
    "highs.solve": {"model": "str", "scipy_status": "int", "rows": "int",
                    "vars": "int"},
    # fault injection (one entry per site in repro.faults.plan.SITES;
    # mode/spec/plan come from Injection.fire, the rest are the
    # site-specific extras its callers forward)
    "fault.solver.fault": {"mode": "str", "spec": "int", "plan": "str",
                           "backend": "str"},
    "fault.worker.death": {"mode": "str", "spec": "int?", "plan": "str",
                           "synthesized": "bool?"},
    "fault.checkpoint.torn": {"mode": "str", "spec": "int", "plan": "str"},
    "fault.trace.corrupt": {"mode": "str", "spec": "int?", "plan": "str?",
                            "name": "str?"},
    "fault.fs.error": {"mode": "str", "spec": "int", "plan": "str",
                       "op": "str"},
    "fault.cache.corrupt": {"mode": "str", "spec": "int", "plan": "str",
                            "key": "str"},
    "fault.service.disconnect": {"mode": "str", "spec": "int", "plan": "str"},
}

#: JSON Schema (draft-07 subset) of one trace event record. The
#: per-name payload catalogue rides along under ``definitions`` so a
#: single object is the whole trace contract.
EVENT_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "repro trace event",
    "type": "object",
    "properties": {
        "v": {"const": EVENT_VERSION},
        "name": {"type": "string", "minLength": 1},
        "t": {"type": "number"},
        "dur": {"type": "number", "minimum": 0},
        "run": {"type": "string"},
        "point": {"type": "integer", "minimum": 0},
        "unit": {"type": "integer", "minimum": 0},
        "task": {"type": "string"},
        "f": {"type": "object"},
    },
    "required": ["v", "name", "t"],
    "additionalProperties": False,
    "definitions": {"events": EVENT_NAMES},
}

_OPTIONAL_TYPES: dict[str, type | tuple[type, ...]] = {
    "dur": (int, float),
    "run": str,
    "point": int,
    "unit": int,
    "task": str,
    "f": dict,
}


def is_runtime_event(name: str) -> bool:
    """Whether an event name is outside the determinism contract."""
    return name.startswith(RUNTIME_PREFIXES)


def validate_event(event: object) -> list[str]:
    """Problems of one event record against :data:`EVENT_SCHEMA`.

    Hand-rolled (the schema is small and ``jsonschema`` is not a
    dependency); returns an empty list for a valid record.
    """
    if not isinstance(event, dict):
        return [f"event must be an object, got {type(event).__name__}"]
    problems: list[str] = []
    if event.get("v") != EVENT_VERSION:
        problems.append(f"v must be {EVENT_VERSION}, got {event.get('v')!r}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"name must be a non-empty string, got {name!r}")
    t = event.get("t")
    if not isinstance(t, (int, float)) or isinstance(t, bool):
        problems.append(f"t must be a number, got {t!r}")
    for key, expected in _OPTIONAL_TYPES.items():
        if key not in event:
            continue
        value = event[key]
        if isinstance(value, bool) or not isinstance(value, expected):
            problems.append(f"{key} has invalid type {type(value).__name__}")
        elif key == "dur" and value < 0:
            problems.append(f"dur must be non-negative, got {value!r}")
        elif key in ("point", "unit") and value < 0:
            problems.append(f"{key} must be non-negative, got {value!r}")
    extras = set(event) - set(EVENT_SCHEMA["properties"])
    if extras:
        problems.append(f"unknown fields {sorted(extras)}")
    return problems


def require_valid_event(event: object, where: str = "") -> dict:
    """Return ``event`` if valid, else raise :class:`ObservabilityError`."""
    problems = validate_event(event)
    if problems:
        prefix = f"{where}: " if where else ""
        raise ObservabilityError(
            f"{prefix}invalid trace event: " + "; ".join(problems)
        )
    assert isinstance(event, dict)
    return event


class EventRecorder:
    """Buffers events in memory; the worker half of the trace pipeline.

    Recorders never touch the filesystem — a worker process drains its
    recorder into the unit result it returns, and the parent's
    :class:`TraceWriter` persists the events. Appending is a single
    ``list.append``, safe from the watchdog's solver thread too.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._events: list[dict] = []

    def emit(
        self,
        name: str,
        *,
        dur: float | None = None,
        task: str | None = None,
        point: int | None = None,
        unit: int | None = None,
        **fields: object,
    ) -> None:
        """Record one event (extra keyword fields go into ``f``)."""
        event: dict = {"v": EVENT_VERSION, "name": name, "t": self._clock()}
        if dur is not None:
            event["dur"] = max(0.0, float(dur))
        if task is not None:
            event["task"] = task
        if point is not None:
            event["point"] = point
        if unit is not None:
            event["unit"] = unit
        if fields:
            event["f"] = fields
        self._events.append(event)

    @contextmanager
    def span(
        self, name: str, *, task: str | None = None, **fields: object
    ) -> Iterator[None]:
        """Time a block and emit one event with its duration on exit."""
        start = self._clock()
        try:
            yield
        finally:
            self.emit(name, dur=self._clock() - start, task=task, **fields)

    @property
    def events(self) -> tuple[dict, ...]:
        return tuple(self._events)

    def drain(self) -> tuple[dict, ...]:
        """Return all buffered events and clear the buffer."""
        events = tuple(self._events)
        self._events.clear()
        return events


# ----------------------------------------------------------------------
# module-level recording scope
# ----------------------------------------------------------------------
# A plain module-level stack, deliberately *not* thread-local: the
# resilient backend runs solves in a watchdog thread and their events
# must land in the same recorder. Experiment code evaluates one work
# unit at a time per process, so scopes never interleave.
_RECORDERS: list[EventRecorder] = []


def active_recorder() -> EventRecorder | None:
    """The innermost installed recorder, or ``None`` (tracing off)."""
    return _RECORDERS[-1] if _RECORDERS else None


@contextmanager
def recording(
    recorder: EventRecorder | None = None,
) -> Iterator[EventRecorder]:
    """Install ``recorder`` (or a fresh one) for the dynamic extent."""
    scoped = recorder if recorder is not None else EventRecorder()
    _RECORDERS.append(scoped)
    try:
        yield scoped
    finally:
        _RECORDERS.pop()


def emit(
    name: str,
    *,
    dur: float | None = None,
    task: str | None = None,
    point: int | None = None,
    unit: int | None = None,
    **fields: object,
) -> None:
    """Emit an event to the active recorder; no-op when tracing is off.

    Accepts the full envelope (``dur``/``task``/``point``/``unit``)
    so correlation ids land as top-level record fields, never inside
    the ``f`` payload — the same signature contract as
    :meth:`EventRecorder.emit` and :meth:`TraceWriter.emit`, enforced
    statically by the ``trace-contract`` lint rule.
    """
    recorder = active_recorder()
    if recorder is not None:
        recorder.emit(
            name, dur=dur, task=task, point=point, unit=unit, **fields
        )


@contextmanager
def span(
    name: str, *, task: str | None = None, **fields: object
) -> Iterator[None]:
    """Module-level :meth:`EventRecorder.span`; no-op when tracing is off."""
    recorder = active_recorder()
    if recorder is None:
        yield
        return
    with recorder.span(name, task=task, **fields):
        yield


# ----------------------------------------------------------------------
# JSONL sink (parent process only)
# ----------------------------------------------------------------------
class TraceWriter:
    """Append-only JSONL sink; the sole writer of one trace file.

    Stamps the run correlation id (and, for shipped worker buffers,
    the point/unit ids) onto every record and validates each line
    before writing. Lines are compact, key-sorted JSON, so identical
    event streams serialise identically.
    """

    def __init__(self, path: str | Path, run_id: str) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self._clock = time.perf_counter
        try:
            self._file: IO[str] | None = open(self.path, "w")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot open trace file {self.path}: {exc}"
            ) from exc
        self.lines_written = 0
        #: Lines replaced by an injected ``trace.corrupt`` fault.
        self.lines_corrupted = 0

    def write(
        self,
        event: Mapping[str, object],
        *,
        point: int | None = None,
        unit: int | None = None,
    ) -> None:
        """Stamp correlation ids onto one event and append it."""
        if self._file is None:
            raise ObservabilityError(f"trace file {self.path} already closed")
        record = dict(event)
        record.setdefault("run", self.run_id)
        if point is not None:
            record.setdefault("point", point)
        if unit is not None:
            record.setdefault("unit", unit)
        require_valid_event(record, where=str(self.path))
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        # Imported lazily: repro.faults emits fault.* events through
        # this module, so a top-level import would be circular.
        from repro.faults import injection as faults

        spec = faults.fire("trace.corrupt", point=point, unit=unit)
        if spec is not None:
            # Simulate a torn or garbled append: the reader side must
            # survive it (see read_trace_lenient). A truncated line is
            # written without its newline — exactly what a crash mid-
            # write leaves behind at the end of a JSONL file. The
            # injection itself is recorded first (serialised directly;
            # going through write() again would re-trigger the fault),
            # so the trace proves what was injected where.
            marker: dict = {
                "v": EVENT_VERSION,
                "name": "fault.trace.corrupt",
                "t": self._clock(),
                "run": self.run_id,
                "f": {"mode": spec.mode, "name": record.get("name")},
            }
            if point is not None:
                marker["point"] = point
            if unit is not None:
                marker["unit"] = unit
            self._file.write(
                json.dumps(marker, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self.lines_written += 1
            if spec.mode == "truncate":
                self._file.write(line[: max(1, len(line) // 2)])
            else:
                self._file.write("{corrupt trace line (injected)\n")
            self.lines_corrupted += 1
            return
        self._file.write(line + "\n")
        self.lines_written += 1

    def write_events(
        self,
        events: "tuple[Mapping[str, object], ...] | list[Mapping[str, object]]",
        *,
        point: int | None = None,
        unit: int | None = None,
    ) -> None:
        """Append a worker's buffered events under one (point, unit)."""
        for event in events:
            self.write(event, point=point, unit=unit)

    def emit(
        self,
        name: str,
        *,
        dur: float | None = None,
        point: int | None = None,
        unit: int | None = None,
        task: str | None = None,
        **fields: object,
    ) -> None:
        """Build and append one parent-side event directly."""
        event: dict = {"v": EVENT_VERSION, "name": name, "t": self._clock()}
        if dur is not None:
            event["dur"] = max(0.0, float(dur))
        if task is not None:
            event["task"] = task
        if fields:
            event["f"] = fields
        self.write(event, point=point, unit=unit)

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace(path: str | Path) -> list[dict]:
    """Read and validate every event of a JSONL trace file.

    Strict: the first corrupt line raises
    :class:`~repro.errors.ObservabilityError`. Readers that must
    survive crash-truncated or partially-corrupt traces use
    :func:`read_trace_lenient` instead.
    """
    path = Path(path)
    if not path.exists():
        raise ObservabilityError(f"trace file not found: {path}")
    events: list[dict] = []
    try:
        handle = open(path)
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace {path}: {exc}") from exc
    with handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            events.append(require_valid_event(event, where=f"{path}:{lineno}"))
    return events


@dataclass
class TraceCorruption:
    """Explicit corruption counters of one lenient trace read.

    Attributes:
        bad_json: Lines that are not parseable JSON (torn appends,
            injected garbage). A final line cut mid-record — the
            classic crash signature — is additionally counted in
            ``truncated_final``.
        invalid_schema: Parseable lines whose record violates
            :data:`EVENT_SCHEMA` (other than the version field).
        version_mismatch: Records stamped with an event version other
            than :data:`EVENT_VERSION` (written by a different build).
        truncated_final: 1 when the file's last line is corrupt —
            i.e. the trace was torn mid-append by a crash.
    """

    bad_json: int = 0
    invalid_schema: int = 0
    version_mismatch: int = 0
    truncated_final: int = 0

    @property
    def total(self) -> int:
        """Corrupt lines skipped (``truncated_final`` is a subset flag)."""
        return self.bad_json + self.invalid_schema + self.version_mismatch

    def as_dict(self) -> dict[str, int]:
        """Nonzero counters only, for compact reporting."""
        counters = {
            "bad_json": self.bad_json,
            "invalid_schema": self.invalid_schema,
            "version_mismatch": self.version_mismatch,
            "truncated_final": self.truncated_final,
        }
        return {name: value for name, value in counters.items() if value}


def read_trace_lenient(
    path: str | Path,
) -> tuple[list[dict], TraceCorruption]:
    """Read a JSONL trace, skipping corrupt lines instead of raising.

    Returns the valid events plus a :class:`TraceCorruption` count of
    everything skipped, so callers can report exactly how much of the
    trace was lost — a crash-truncated final line, injected garbage, a
    schema-version mismatch — rather than dying on it or silently
    pretending the trace is complete.
    """
    path = Path(path)
    if not path.exists():
        raise ObservabilityError(f"trace file not found: {path}")
    events: list[dict] = []
    corruption = TraceCorruption()
    last_line_bad = False
    try:
        handle = open(path)
    except OSError as exc:
        raise ObservabilityError(f"cannot read trace {path}: {exc}") from exc
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            last_line_bad = True
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                corruption.bad_json += 1
                continue
            if not isinstance(event, dict):
                corruption.invalid_schema += 1
                continue
            if event.get("v") != EVENT_VERSION:
                corruption.version_mismatch += 1
                continue
            if validate_event(event):
                corruption.invalid_schema += 1
                continue
            events.append(event)
            last_line_bad = False
    if last_line_bad:
        corruption.truncated_final = 1
    return events, corruption
