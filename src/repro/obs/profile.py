"""Trace aggregation: turn an event log into a per-phase profile.

``repro profile`` (and the tests) feed a JSONL trace produced by
``repro figure --trace`` through :func:`aggregate_events` and render
the result with :func:`render_profile`:

* **work counters** — per-event-name counts restricted to the
  deterministic work events (solves, fixpoint iterations, cache
  traffic, LS rounds, unit/point lifecycle). These are identical
  between ``--jobs 1`` and ``--jobs N`` runs of the same
  configuration, which the test suite pins.
* **analysis cache counters** — the summed ``cache.*`` event amounts.
  They reconcile *exactly* with the ``PointResult.analysis_stats``
  of the same run (both count the same
  :meth:`repro.analysis.cache.AnalysisCache.bump` calls), which
  :func:`reconcile` verifies.
* **solve outcomes** — solver status and degradation-level breakdown.
* **timings** — wall-time totals/means/maxima per event name plus a
  solve-duration histogram. Timing values are measurements, not part
  of the determinism contract.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import ObservabilityError
from repro.obs.events import is_runtime_event
from repro.sim.metrics import text_histogram

#: Event name marking one captured taskset/protocol failure.
FAILURE_EVENT = "protocol.failure"

_CACHE_PREFIX = "cache."


@dataclass
class PhaseTiming:
    """Wall-time statistics of one event name."""

    count: int = 0
    total: float = 0.0
    maximum: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.maximum = max(self.maximum, duration)


@dataclass
class ProfileReport:
    """Aggregate view of one trace (see module docstring)."""

    counts: dict[str, int] = field(default_factory=dict)
    cache_counters: dict[str, int] = field(default_factory=dict)
    solve_statuses: dict[str, int] = field(default_factory=dict)
    solve_degradations: dict[int, int] = field(default_factory=dict)
    timings: dict[str, PhaseTiming] = field(default_factory=dict)
    solve_durations: list[float] = field(default_factory=list)
    runs: set[str] = field(default_factory=set)
    events_total: int = 0
    #: Nonzero corruption counters of a lenient trace read (see
    #: :class:`repro.obs.events.TraceCorruption.as_dict`); empty for a
    #: clean trace or a strict read.
    corruption: dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> int:
        """Captured taskset/protocol failures recorded in the trace."""
        return self.counts.get(FAILURE_EVENT, 0)

    def deterministic_counts(self) -> dict[str, int]:
        """Event counts covered by the jobs=1 == jobs=N contract."""
        return {
            name: count
            for name, count in sorted(self.counts.items())
            if not is_runtime_event(name)
        }

    def runtime_counts(self) -> dict[str, int]:
        """Event counts outside the determinism contract."""
        return {
            name: count
            for name, count in sorted(self.counts.items())
            if is_runtime_event(name)
        }


def aggregate_events(events: Iterable[Mapping[str, object]]) -> ProfileReport:
    """Fold validated trace events into a :class:`ProfileReport`."""
    report = ProfileReport()
    for event in events:
        name = event.get("name")
        if not isinstance(name, str):
            raise ObservabilityError(f"event without a name: {event!r}")
        report.events_total += 1
        report.counts[name] = report.counts.get(name, 0) + 1
        run = event.get("run")
        if isinstance(run, str):
            report.runs.add(run)
        fields = event.get("f")
        fields = fields if isinstance(fields, dict) else {}
        if name.startswith(_CACHE_PREFIX):
            counter = name[len(_CACHE_PREFIX):]
            amount = fields.get("amount", 1)
            amount = amount if isinstance(amount, int) else 1
            report.cache_counters[counter] = (
                report.cache_counters.get(counter, 0) + amount
            )
        duration = event.get("dur")
        if isinstance(duration, (int, float)):
            report.timings.setdefault(name, PhaseTiming()).add(float(duration))
            if name == "solve":
                report.solve_durations.append(float(duration))
        if name == "solve":
            status = fields.get("status")
            if isinstance(status, str):
                report.solve_statuses[status] = (
                    report.solve_statuses.get(status, 0) + 1
                )
            degradation = fields.get("degradation")
            if isinstance(degradation, int):
                report.solve_degradations[degradation] = (
                    report.solve_degradations.get(degradation, 0) + 1
                )
    return report


def render_profile(report: ProfileReport, timings: bool = True) -> str:
    """Human-readable profile of one trace.

    With ``timings=False`` only the deterministic sections are
    rendered: the output of two runs of the same configuration is then
    identical regardless of worker count — the form the determinism
    tests compare.
    """
    lines: list[str] = []
    runs = ", ".join(sorted(report.runs)) or "(unstamped)"
    deterministic = report.deterministic_counts()
    # With timings off the header must stay deterministic too, so it
    # counts only the work events (runtime-event counts vary per run).
    total = report.events_total if timings else sum(deterministic.values())
    kind = "events" if timings else "work events"
    lines.append(f"trace profile — run {runs}, {total} {kind}")
    lines.append("")
    lines.append("work events (deterministic across --jobs)")
    lines.append(f"  {'event':<28}{'count':>10}")
    for name, count in deterministic.items():
        lines.append(f"  {name:<28}{count:>10}")
    if report.cache_counters:
        lines.append("")
        lines.append("analysis cache counters (== PointResult.analysis_stats)")
        for name, value in sorted(report.cache_counters.items()):
            lines.append(f"  {name:<28}{value:>10}")
    if report.solve_statuses or report.solve_degradations:
        lines.append("")
        lines.append("solve outcomes")
        for status, count in sorted(report.solve_statuses.items()):
            lines.append(f"  status={status:<21}{count:>10}")
        for level, count in sorted(report.solve_degradations.items()):
            lines.append(f"  degradation={level:<16}{count:>10}")
    if report.corruption:
        lines.append("")
        lines.append("trace corruption (lines skipped by the lenient reader)")
        for name, value in sorted(report.corruption.items()):
            lines.append(f"  {name:<28}{value:>10}")
    if not timings:
        return "\n".join(lines)
    runtime = report.runtime_counts()
    if runtime:
        lines.append("")
        lines.append("runtime events (vary with workers/machine)")
        for name, count in runtime.items():
            lines.append(f"  {name:<28}{count:>10}")
    if report.timings:
        lines.append("")
        lines.append("timings")
        lines.append(
            f"  {'event':<28}{'count':>8}{'total s':>12}"
            f"{'mean s':>12}{'max s':>12}"
        )
        for name in sorted(report.timings):
            timing = report.timings[name]
            lines.append(
                f"  {name:<28}{timing.count:>8}{timing.total:>12.3f}"
                f"{timing.mean:>12.6f}{timing.maximum:>12.6f}"
            )
    if report.solve_durations:
        lines.append("")
        lines.append(
            text_histogram(
                report.solve_durations,
                title="solve wall-time histogram (seconds)",
            )
        )
    return "\n".join(lines)


def reconcile(
    report: ProfileReport,
    points: "Iterable[object]",
) -> list[str]:
    """Cross-check a trace profile against the run's point results.

    ``points`` is an iterable of
    :class:`repro.experiments.runner.PointResult` (duck-typed: only
    ``analysis_stats`` and ``failures`` are read). Returns a list of
    mismatch descriptions — empty when the trace's cache counters
    equal the summed ``analysis_stats`` and the ``protocol.failure``
    event count equals the failure-ledger record count. Points loaded
    from artifacts that predate ``analysis_stats`` cannot reconcile
    and will be reported as mismatches.
    """
    expected: dict[str, int] = {}
    ledger = 0
    for point in points:
        stats = getattr(point, "analysis_stats", {}) or {}
        for name, value in stats.items():
            expected[name] = expected.get(name, 0) + int(value)
        ledger += len(getattr(point, "failures", ()))
    problems: list[str] = []
    for name in sorted(set(expected) | set(report.cache_counters)):
        traced = report.cache_counters.get(name, 0)
        recorded = expected.get(name, 0)
        if traced != recorded:
            problems.append(
                f"cache counter {name!r}: trace says {traced}, "
                f"point results say {recorded}"
            )
    if report.failures != ledger:
        problems.append(
            f"failure events: trace says {report.failures}, "
            f"failure ledger holds {ledger} records"
        )
    return problems


def profile_trace(
    path: str, timings: bool = True, lenient: bool = False
) -> str:
    """Read, validate, aggregate, and render one trace file.

    With ``lenient=True`` corrupt lines are skipped and surfaced as
    explicit corruption counters in the rendered report instead of
    aborting the read (the ``repro profile`` behaviour).
    """
    from repro.obs.events import read_trace, read_trace_lenient

    if lenient:
        events, corruption = read_trace_lenient(path)
        report = aggregate_events(events)
        report.corruption = corruption.as_dict()
    else:
        report = aggregate_events(read_trace(path))
    return render_profile(report, timings=timings)


def compare_profiles(
    a: Sequence[Mapping[str, object]], b: Sequence[Mapping[str, object]]
) -> list[str]:
    """Differences between two traces' deterministic aggregates.

    Used by the determinism tests (and handy interactively): returns
    an empty list exactly when the two event streams agree on every
    work-event count, cache counter, and solve outcome.
    """
    ra, rb = aggregate_events(a), aggregate_events(b)
    problems: list[str] = []
    if ra.deterministic_counts() != rb.deterministic_counts():
        problems.append(
            f"work-event counts differ: {ra.deterministic_counts()} != "
            f"{rb.deterministic_counts()}"
        )
    if ra.cache_counters != rb.cache_counters:
        problems.append(
            f"cache counters differ: {ra.cache_counters} != {rb.cache_counters}"
        )
    if ra.solve_statuses != rb.solve_statuses:
        problems.append(
            f"solve statuses differ: {ra.solve_statuses} != {rb.solve_statuses}"
        )
    if ra.solve_degradations != rb.solve_degradations:
        problems.append(
            f"solve degradations differ: {ra.solve_degradations} != "
            f"{rb.solve_degradations}"
        )
    return problems
