"""Run observability: structured event tracing and trace profiling.

See :mod:`repro.obs.events` for the event contract and the
recorder/writer pipeline, and :mod:`repro.obs.profile` for turning a
trace into a per-phase report.
"""

from repro.obs.events import (
    EVENT_SCHEMA,
    EVENT_VERSION,
    RUNTIME_PREFIXES,
    EventRecorder,
    TraceCorruption,
    TraceWriter,
    active_recorder,
    emit,
    is_runtime_event,
    read_trace,
    read_trace_lenient,
    recording,
    require_valid_event,
    span,
    validate_event,
)
from repro.obs.profile import (
    ProfileReport,
    aggregate_events,
    compare_profiles,
    profile_trace,
    reconcile,
    render_profile,
)

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_VERSION",
    "RUNTIME_PREFIXES",
    "EventRecorder",
    "ProfileReport",
    "TraceCorruption",
    "TraceWriter",
    "active_recorder",
    "aggregate_events",
    "compare_profiles",
    "emit",
    "is_runtime_event",
    "profile_trace",
    "read_trace",
    "read_trace_lenient",
    "reconcile",
    "recording",
    "render_profile",
    "require_valid_event",
    "span",
    "validate_event",
]
