"""Random task-set factory following the paper's Sec. VII recipe.

For each configuration: periods ``T_i`` log-uniform in [10, 100] ms,
utilisations by UUnifast, ``C_i = T_i * U_i``, memory phases
``l_i = u_i = gamma * C_i``, deadlines
``D_i ~ U[C_i + beta*(T_i - C_i), T_i]``, and unique
deadline-monotonic priorities.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.errors import ExperimentError
from repro.generator.periods import log_uniform_periods
from repro.generator.uunifast import uunifast_discard
from repro.model.task import Task
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class GenerationConfig:
    """Parameters of one random-workload configuration.

    Attributes:
        n: Tasks per set.
        utilization: Total execution-phase utilisation ``U``.
        gamma: Memory-intensity: ``l = u = gamma * C`` (paper: 0.1-0.5).
        beta: Deadline-tightness: ``D ~ U[C + beta(T-C), T]`` — smaller
            means tighter deadlines (paper inset (f)).
        period_low: Lower bound of the log-uniform period range (ms).
        period_high: Upper bound of the log-uniform period range (ms).
        max_task_utilization: Per-task cap (UUnifast-discard).
    """

    n: int = 6
    utilization: float = 0.5
    gamma: float = 0.3
    beta: float = 0.5
    period_low: float = 10.0
    period_high: float = 100.0
    max_task_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ExperimentError("n must be positive")
        if self.utilization <= 0:
            raise ExperimentError("utilization must be positive")
        if self.gamma < 0:
            raise ExperimentError("gamma must be non-negative")
        if not 0.0 <= self.beta <= 1.0:
            raise ExperimentError("beta must be in [0, 1]")
        if not 0 < self.period_low <= self.period_high:
            raise ExperimentError("invalid period range")

    def with_(self, **overrides) -> "GenerationConfig":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)


def generate_taskset(
    config: GenerationConfig, rng: np.random.Generator
) -> TaskSet:
    """Draw one random task set per the paper's recipe.

    Deadlines below a task's total cost are kept (such a task is
    unschedulable under every protocol — see
    :attr:`repro.model.Task.trivially_unschedulable`), matching the
    paper's generation, which does not reject them either.
    """
    periods = log_uniform_periods(
        config.n, rng, config.period_low, config.period_high
    )
    utilizations = uunifast_discard(
        config.n, config.utilization, rng, config.max_task_utilization
    )
    rows = []
    for idx, (period, util) in enumerate(zip(periods, utilizations)):
        exec_time = period * util
        memory = config.gamma * exec_time
        # beta = 1 makes the lower edge equal the period; clamp against
        # floating-point overshoot so the uniform draw stays valid.
        d_low = min(exec_time + config.beta * (period - exec_time), period)
        deadline = float(rng.uniform(d_low, period))
        rows.append((idx, exec_time, memory, period, deadline))

    # Deadline-monotonic unique priorities (ties broken by index).
    order = sorted(range(config.n), key=lambda i: (rows[i][4], i))
    priority_of = {task_idx: prio for prio, task_idx in enumerate(order)}

    tasks = [
        Task.sporadic(
            name=f"t{idx}",
            exec_time=exec_time,
            copy_in=memory,
            copy_out=memory,
            period=period,
            deadline=deadline,
            priority=priority_of[idx],
        )
        for idx, exec_time, memory, period, deadline in rows
    ]
    return TaskSet(tasks)


def generate_tasksets(
    config: GenerationConfig, count: int, seed: int
) -> Iterator[TaskSet]:
    """Yield ``count`` independent task sets from a seeded stream."""
    if count <= 0:
        raise ExperimentError("count must be positive")
    rng = np.random.default_rng(seed)
    for _ in range(count):
        yield generate_taskset(config, rng)
