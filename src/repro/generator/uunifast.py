"""UUnifast utilisation generation [18].

UUnifast draws ``n`` task utilisations summing exactly to ``U`` with a
uniform distribution over the valid simplex — the standard unbiased
generator for schedulability experiments, used by the paper.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError


def uunifast(
    n: int, total_utilization: float, rng: np.random.Generator
) -> list[float]:
    """Draw ``n`` utilisations summing to ``total_utilization``.

    Args:
        n: Number of tasks (positive).
        total_utilization: Target sum (positive).
        rng: NumPy random generator (seeded by the caller).

    Returns:
        A list of ``n`` positive floats summing to the target.
    """
    if n <= 0:
        raise ExperimentError(f"n must be positive, got {n}")
    if total_utilization <= 0:
        raise ExperimentError(
            f"total utilisation must be positive, got {total_utilization}"
        )
    utilizations: list[float] = []
    remaining = total_utilization
    for i in range(1, n):
        next_remaining = remaining * rng.random() ** (1.0 / (n - i))
        utilizations.append(remaining - next_remaining)
        remaining = next_remaining
    utilizations.append(remaining)
    return utilizations


def uunifast_discard(
    n: int,
    total_utilization: float,
    rng: np.random.Generator,
    max_task_utilization: float = 1.0,
    max_attempts: int = 10_000,
) -> list[float]:
    """UUnifast with rejection of per-task utilisations above a cap.

    For single-core experiments with ``U <= 1`` the cap never triggers,
    but the variant is needed when generating multicore workloads with
    ``U > 1`` (a single task cannot exceed one core).
    """
    if max_task_utilization <= 0:
        raise ExperimentError("max_task_utilization must be positive")
    for _ in range(max_attempts):
        candidate = uunifast(n, total_utilization, rng)
        if max(candidate) <= max_task_utilization:
            return candidate
    raise ExperimentError(
        f"could not draw {n} utilisations summing to {total_utilization} "
        f"with per-task cap {max_task_utilization} in {max_attempts} attempts"
    )
