"""Random workload generation matching the paper's Sec. VII setup."""

from repro.generator.uunifast import uunifast, uunifast_discard
from repro.generator.periods import log_uniform_periods
from repro.generator.taskset_gen import (
    GenerationConfig,
    generate_taskset,
    generate_tasksets,
)
from repro.generator.footprints import generate_platform_taskset

__all__ = [
    "uunifast",
    "uunifast_discard",
    "log_uniform_periods",
    "GenerationConfig",
    "generate_taskset",
    "generate_tasksets",
    "generate_platform_taskset",
]
