"""Period generation: log-uniform over [10, 100] ms (paper Sec. VII)."""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError


def log_uniform_periods(
    n: int,
    rng: np.random.Generator,
    low: float = 10.0,
    high: float = 100.0,
) -> list[float]:
    """Draw ``n`` periods log-uniformly from ``[low, high]``.

    A log-uniform draw spreads periods evenly across orders of
    magnitude, the standard choice for real-time workload generation
    (and the paper's: log-uniform in [10, 100] ms).
    """
    if n <= 0:
        raise ExperimentError(f"n must be positive, got {n}")
    if not 0 < low <= high:
        raise ExperimentError(f"need 0 < low <= high, got [{low}, {high}]")
    exponents = rng.uniform(np.log(low), np.log(high), size=n)
    return [float(p) for p in np.exp(exponents)]
