"""Platform-aware generation: derive copy phases from memory footprints.

An alternative to the paper's abstract ``l = u = gamma * C`` model:
draw a local-memory footprint per task, check it against the platform's
partition size, and derive the copy-phase durations from the DMA
bandwidth. Used by the multicore partitioning example to exercise the
platform model end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExperimentError
from repro.generator.periods import log_uniform_periods
from repro.generator.uunifast import uunifast_discard
from repro.model.platform import Core, copy_times_from_footprint
from repro.model.task import Task
from repro.model.taskset import TaskSet


def generate_platform_taskset(
    n: int,
    utilization: float,
    core: Core,
    rng: np.random.Generator,
    footprint_low: int = 4 * 1024,
    footprint_high: int | None = None,
    output_fraction: float = 0.25,
    period_low: float = 10.0,
    period_high: float = 100.0,
) -> TaskSet:
    """Draw a task set whose memory phases follow from footprints.

    Args:
        n: Number of tasks.
        utilization: Total execution-phase utilisation.
        core: The core whose partition size and DMA bandwidth apply.
        rng: Seeded random generator.
        footprint_low: Smallest footprint in bytes.
        footprint_high: Largest footprint; defaults to the partition
            size (everything generated is guaranteed to fit).
        output_fraction: Fraction of the footprint written back in the
            copy-out phase.
        period_low: Log-uniform period range lower bound.
        period_high: Log-uniform period range upper bound.
    """
    if footprint_high is None:
        footprint_high = core.memory.partition_bytes
    if not 0 < footprint_low <= footprint_high:
        raise ExperimentError("invalid footprint range")
    if footprint_high > core.memory.partition_bytes:
        raise ExperimentError("footprints cannot exceed the partition size")
    if not 0.0 < output_fraction <= 1.0:
        raise ExperimentError("output_fraction must be in (0, 1]")

    periods = log_uniform_periods(n, rng, period_low, period_high)
    utilizations = uunifast_discard(n, utilization, rng)
    entries = []
    for idx, (period, util) in enumerate(zip(periods, utilizations)):
        exec_time = period * util
        footprint = int(rng.integers(footprint_low, footprint_high + 1))
        output_bytes = max(1, int(footprint * output_fraction))
        copy_in, copy_out = copy_times_from_footprint(
            footprint, output_bytes, core
        )
        deadline = float(rng.uniform(max(exec_time, period * 0.5), period))
        entries.append(
            (idx, exec_time, copy_in, copy_out, period, deadline, footprint)
        )

    order = sorted(range(n), key=lambda i: (entries[i][5], i))
    priority_of = {task_idx: prio for prio, task_idx in enumerate(order)}
    tasks = [
        Task.sporadic(
            name=f"t{idx}",
            exec_time=exec_time,
            copy_in=copy_in,
            copy_out=copy_out,
            period=period,
            deadline=deadline,
            priority=priority_of[idx],
            footprint=footprint,
        )
        for idx, exec_time, copy_in, copy_out, period, deadline, footprint in entries
    ]
    return TaskSet(tasks)
