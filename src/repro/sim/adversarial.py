"""Adversarial release-pattern search.

Analytic bounds are validated by simulation, but a random release plan
rarely exercises the worst case. This module searches the space of
*legal* sporadic release patterns (all inter-arrival constraints
respected) for patterns that maximise one task's observed response
time: random phased restarts plus a local search that re-aligns other
tasks' releases just after the victim's release — the classic
critical-instant-style pressure for non-preemptive pipelines.

The search is a heuristic lower-bound generator: its best observation
is a certificate of how tight (or loose) the analytic bound is on a
given workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.model.taskset import TaskSet
from repro.sim.releases import ReleasePlan
from repro.sim.trace import Trace
from repro.types import Time


@dataclass(frozen=True)
class AdversarialResult:
    """Best release pattern found for one victim task.

    Attributes:
        victim: The task whose response was maximised.
        worst_response: Largest observed response time.
        plan: The release plan achieving it.
        trace: The corresponding trace.
        patterns_tried: Number of simulated plans.
    """

    victim: str
    worst_response: Time
    plan: ReleasePlan
    trace: Trace
    patterns_tried: int


def _phased_plan(
    taskset: TaskSet,
    horizon: Time,
    phases: dict[str, Time],
    jitter: dict[str, Time] | None = None,
) -> ReleasePlan:
    """Periodic releases at ``phase + k*T`` (a legal sporadic pattern)."""
    jitter = jitter or {}
    releases = {}
    for task in taskset:
        phase = max(0.0, phases.get(task.name, 0.0))
        extra = max(0.0, jitter.get(task.name, 0.0))
        times = []
        t = phase
        while t < horizon:
            times.append(t)
            t += task.period + extra
        releases[task.name] = tuple(times)
    return ReleasePlan(releases=releases, horizon=horizon)


def find_worst_response(
    taskset: TaskSet,
    victim_name: str,
    simulator_factory,
    horizon: Time | None = None,
    restarts: int = 12,
    rng: np.random.Generator | None = None,
) -> AdversarialResult:
    """Search release phasings maximising the victim's response time.

    Args:
        taskset: The workload (LS marks as desired).
        victim_name: Task whose response to maximise.
        simulator_factory: Callable ``taskset -> simulator`` (any of
            the three simulator classes works).
        horizon: Simulated span; defaults to four times the largest
            period (several victim jobs under every phasing).
        restarts: Random restarts around the structured candidates.
        rng: Randomness source (seeded by the caller for
            reproducibility).

    Returns:
        The best pattern found and its trace.
    """
    victim = taskset.by_name(victim_name)
    rng = rng or np.random.default_rng(0)
    if horizon is None:
        horizon = 4.0 * max(t.period for t in taskset)
    if horizon <= 0:
        raise SimulationError("horizon must be positive")
    simulator = simulator_factory(taskset)

    candidates: list[dict[str, Time]] = []
    # Structured pattern 1: synchronous release.
    candidates.append({t.name: 0.0 for t in taskset})
    # Structured pattern 2: victim released just after everyone else —
    # lower-priority work is already committed (the Fig. 1 situation).
    for epsilon in (1e-3, 0.1, 0.25):
        phases = {t.name: 0.0 for t in taskset}
        phases[victim.name] = epsilon
        candidates.append(phases)
    # Structured pattern 3: victim released just after each
    # lower-priority task *individually* starts its pipeline.
    for other in taskset:
        if other.name == victim.name:
            continue
        phases = {t.name: 0.0 for t in taskset}
        phases[victim.name] = other.copy_in + 1e-3
        candidates.append(phases)
    # Random restarts.
    for _ in range(restarts):
        candidates.append(
            {
                t.name: float(rng.uniform(0.0, t.period))
                for t in taskset
            }
        )

    best_response = float("-inf")
    best_plan: ReleasePlan | None = None
    best_trace: Trace | None = None
    for phases in candidates:
        plan = _phased_plan(taskset, horizon, phases)
        trace = simulator.run(plan)
        response = trace.max_response_time(victim.name)
        if response > best_response:
            best_response = response
            best_plan = plan
            best_trace = trace

    assert best_plan is not None and best_trace is not None
    return AdversarialResult(
        victim=victim.name,
        worst_response=best_response,
        plan=best_plan,
        trace=best_trace,
        patterns_tried=len(candidates),
    )
