"""SVG rendering of simulation traces (no plotting dependencies).

Produces a self-contained SVG: one CPU lane, one DMA lane, per-task
colours, release/deadline markers, and interval boundaries — the
publication-quality counterpart of the ASCII Gantt in
:mod:`repro.sim.gantt`. The XML is hand-assembled so the feature works
in this offline environment and adds no dependency for users.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.sim.trace import Trace
from repro.types import Time

#: Colour-blind-friendly categorical palette (Okabe-Ito).
_PALETTE = (
    "#0072B2", "#E69F00", "#009E73", "#CC79A7",
    "#56B4E9", "#D55E00", "#F0E442", "#999999",
)

_LANE_H = 34
_BAR_H = 22
_TOP = 30
_LEFT = 70
_AXIS_H = 26


def _color_of(names: list[str]) -> dict[str, str]:
    return {
        name: _PALETTE[i % len(_PALETTE)]
        for i, name in enumerate(sorted(names))
    }


class _SvgDoc:
    def __init__(self, width: float, height: float) -> None:
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{width:.0f}" height="{height:.0f}" '
            f'viewBox="0 0 {width:.0f} {height:.0f}" '
            f'font-family="Helvetica, Arial, sans-serif" font-size="11">',
            f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
        ]

    def rect(self, x, y, w, h, fill, opacity=1.0, title=""):
        tip = f"<title>{escape(title)}</title>" if title else ""
        self.parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{max(w, 0.5):.2f}" '
            f'height="{h:.2f}" fill="{fill}" fill-opacity="{opacity}" '
            f'stroke="#333" stroke-width="0.4">{tip}</rect>'
        )

    def line(self, x1, y1, x2, y2, stroke="#999", width=0.6, dash=""):
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def text(self, x, y, content, anchor="start", size=11, fill="#111"):
        self.parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" text-anchor="{anchor}" '
            f'font-size="{size}" fill="{fill}">{escape(str(content))}</text>'
        )

    def render(self) -> str:
        return "\n".join([*self.parts, "</svg>"])


def trace_to_svg(
    trace: Trace,
    until: Time | None = None,
    width: float = 900.0,
) -> str:
    """Render a trace as an SVG string.

    Args:
        trace: A simulation trace (any protocol).
        until: Time horizon to draw; defaults to the last event.
        width: Pixel width of the drawing.
    """
    events = [
        value
        for job in trace.jobs
        for value in (job.copy_out_end, job.exec_end, job.copy_in_end)
        if value is not None
    ]
    horizon = until if until is not None else (max(events, default=1.0))
    horizon = max(horizon, 1e-9)
    scale = (width - _LEFT - 15) / horizon

    def sx(t: Time) -> float:
        return _LEFT + t * scale

    has_dma = bool(trace.intervals) or any(
        j.copy_in_by == "dma" for j in trace.jobs
    )
    lanes = 2 if has_dma else 1
    height = _TOP + lanes * _LANE_H + _AXIS_H + 40
    doc = _SvgDoc(width, height)
    colors = _color_of([j.task.name for j in trace.jobs])

    cpu_y = _TOP
    dma_y = _TOP + _LANE_H
    doc.text(8, cpu_y + _BAR_H - 6, "CPU")
    if has_dma:
        doc.text(8, dma_y + _BAR_H - 6, "DMA")

    # Interval boundaries behind everything.
    for interval in trace.intervals:
        if interval.start <= horizon:
            doc.line(
                sx(interval.start), _TOP - 6,
                sx(interval.start), _TOP + lanes * _LANE_H,
                stroke="#bbb", dash="2,2",
            )

    for job in trace.jobs:
        color = colors[job.task.name]
        if job.exec_start is not None and job.exec_start < horizon:
            doc.rect(
                sx(job.exec_start), cpu_y,
                (job.exec_end - job.exec_start) * scale, _BAR_H,
                color, title=f"{job.name} execute "
                f"[{job.exec_start:.2f}, {job.exec_end:.2f}]",
            )
            doc.text(
                sx(job.exec_start) + 2, cpu_y + _BAR_H - 7,
                job.name, size=9, fill="#fff",
            )
        if job.copy_in_start is not None and job.copy_in_start < horizon:
            lane_y = cpu_y if job.copy_in_by == "cpu" else dma_y
            doc.rect(
                sx(job.copy_in_start), lane_y + 3,
                (job.copy_in_end - job.copy_in_start) * scale, _BAR_H - 6,
                color, opacity=0.45,
                title=f"{job.name} copy-in ({job.copy_in_by})",
            )
        for a, b in job.cancelled_copy_ins:
            if a < horizon and b > a:
                doc.rect(
                    sx(a), dma_y + 3, (b - a) * scale, _BAR_H - 6,
                    "#d33", opacity=0.35,
                    title=f"{job.name} cancelled copy-in",
                )
        if job.copy_out_start is not None and job.copy_out_start < horizon:
            lane_y = dma_y if has_dma else cpu_y
            doc.rect(
                sx(job.copy_out_start), lane_y + 3,
                (job.copy_out_end - job.copy_out_start) * scale, _BAR_H - 6,
                color, opacity=0.75,
                title=f"{job.name} copy-out",
            )
        # Release marker.
        if job.release <= horizon:
            doc.line(
                sx(job.release), cpu_y - 6, sx(job.release), cpu_y,
                stroke=color, width=1.4,
            )

    # Time axis.
    axis_y = _TOP + lanes * _LANE_H + 14
    doc.line(sx(0), axis_y, sx(horizon), axis_y, stroke="#333", width=1.0)
    step = max(round(horizon / 10.0, 1), 0.1)
    tick = 0.0
    while tick <= horizon + 1e-9:
        doc.line(sx(tick), axis_y, sx(tick), axis_y + 4, stroke="#333")
        doc.text(sx(tick), axis_y + 16, f"{tick:g}", anchor="middle", size=9)
        tick += step

    # Legend.
    legend_y = axis_y + 30
    x = _LEFT
    for name, color in colors.items():
        doc.rect(x, legend_y - 10, 12, 12, color)
        doc.text(x + 16, legend_y, name, size=10)
        x += 16 + 8 * len(name) + 24
    doc.text(
        width - 12, legend_y,
        f"{trace.protocol} (time 0..{horizon:g})",
        anchor="end", size=10, fill="#555",
    )
    return doc.render()


def save_trace_svg(
    trace: Trace, path: str | Path, until: Time | None = None
) -> None:
    """Render a trace and write it to ``path``."""
    Path(path).write_text(trace_to_svg(trace, until=until))
