"""Trace invariant checkers (the paper's Properties 1-4).

Given a trace from an interval simulator, these checks verify on the
*observed* schedule what the paper proves must hold for every legal
schedule:

* Properties 1-2 (phase ordering): a DMA-loaded task's copy-in
  completes in the interval preceding its execution; every copy-out
  runs in the interval following the execution.
* Property 3: an NLS task is blocked in at most two intervals by
  lower-priority tasks.
* Property 4: an LS task is blocked in at most one interval.

They are used by the property-based tests and available to users as a
debugging aid (a violation means a protocol-implementation bug, not a
workload problem).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.trace import Job, Trace
from repro.types import TIME_EPS


def _interval_index_at(trace: Trace, time: float) -> int | None:
    for interval in trace.intervals:
        if interval.start - TIME_EPS <= time < interval.end - TIME_EPS:
            return interval.index
    return None


def check_phase_ordering(trace: Trace) -> None:
    """Properties 1 and 2: strict copy-in / execute / copy-out layout."""
    for job in trace.completed_jobs():
        if job.exec_interval is None:
            raise SimulationError(f"{job.name} completed without an interval")
        k = job.exec_interval
        if job.copy_in_by == "dma":
            # Property 1: DMA copy-in happened during interval k-1.
            if job.copy_in_end is None:
                raise SimulationError(f"{job.name} executed without a copy-in")
            prev = trace.intervals[k - 1] if k >= 1 else None
            if prev is None:
                raise SimulationError(
                    f"{job.name} executed in the first interval without a "
                    "preceding copy-in interval"
                )
            if not (
                prev.start - TIME_EPS
                <= job.copy_in_start
                <= job.copy_in_end
                <= prev.end + TIME_EPS
            ):
                raise SimulationError(
                    f"{job.name}: copy-in [{job.copy_in_start}, "
                    f"{job.copy_in_end}] not inside interval {k - 1} "
                    f"[{prev.start}, {prev.end}]"
                )
        else:
            # Urgent: CPU copy-in immediately precedes execution (R5).
            if abs(job.copy_in_end - job.exec_start) > TIME_EPS:
                raise SimulationError(
                    f"{job.name}: urgent copy-in does not abut execution"
                )
        # Properties 1-2: copy-out in interval k+1.
        if k + 1 < len(trace.intervals):
            nxt = trace.intervals[k + 1]
            if abs(job.copy_out_start - nxt.start) > TIME_EPS:
                raise SimulationError(
                    f"{job.name}: copy-out starts at {job.copy_out_start}, "
                    f"expected at interval {k + 1} start {nxt.start}"
                )


def count_blocking_intervals(trace: Trace, job: Job) -> int:
    """Number of intervals in which ``job`` was blocked (Sec. II).

    Counts intervals overlapping ``[release, exec_start)`` whose CPU
    occupant is a *lower-priority* task (priority inversion). Intervals
    occupied by higher-priority tasks are interference, not blocking.
    """
    if job.exec_start is None:
        raise SimulationError(f"{job.name} never executed")
    blocked = 0
    for interval in trace.intervals:
        if interval.end <= job.release + TIME_EPS:
            continue
        if interval.start >= job.exec_start - TIME_EPS:
            break
        if interval.cpu_job is None:
            continue
        occupant_task = interval.cpu_job.rsplit("#", 1)[0]
        if occupant_task == job.task.name:
            continue
        occupant = next(
            t for t in (j.task for j in trace.jobs) if t.name == occupant_task
        )
        if occupant.priority > job.task.priority:
            blocked += 1
    return blocked


def check_blocking_bounds(trace: Trace) -> None:
    """Properties 3 and 4 on every completed job of the trace.

    Only meaningful for the proposed protocol (``ls_rules``): protocol
    [3] deliberately allows two blocking intervals for every task.
    """
    for job in trace.completed_jobs():
        limit = 1 if job.task.latency_sensitive else 2
        observed = count_blocking_intervals(trace, job)
        if observed > limit:
            raise SimulationError(
                f"{job.name} ({'LS' if job.task.latency_sensitive else 'NLS'}) "
                f"blocked in {observed} intervals, bound is {limit}"
            )


def check_trace(trace: Trace) -> None:
    """Run every invariant applicable to the trace's protocol."""
    if not trace.intervals:
        return  # NPS traces have no interval structure to check
    check_phase_ordering(trace)
    if trace.protocol == "proposed":
        check_blocking_bounds(trace)
