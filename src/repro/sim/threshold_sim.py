"""Limited-preemption simulator with preemption thresholds.

The runtime counterpart of
:class:`repro.analysis.threshold.ThresholdAnalysis`: memory phases run
inline on the CPU (as NPS), each of a job's three phases is a
non-preemptive chunk, and at a phase boundary the running job yields
only to ready tasks whose priority outranks the job's preemption
threshold. A job holds its threshold as its effective priority from
the moment it starts until it completes, so a preempted job re-enters
the ready queue at its threshold, not its base priority.
"""

from __future__ import annotations

import heapq
import itertools

from repro.analysis.threshold import resolve_thresholds
from repro.errors import SimulationError
from repro.model.taskset import TaskSet
from repro.sim.releases import ReleasePlan
from repro.sim.trace import Job, Trace


class ThresholdSimulator:
    """Simulate a release plan under preemption-threshold scheduling.

    Args:
        taskset: The workload.
        thresholds: Optional ``((name, theta), ...)`` pairs, the same
            shape as ``AnalysisOptions.preemption_thresholds``; tasks
            not named default to their own priority.
    """

    protocol = "threshold"

    def __init__(
        self,
        taskset: TaskSet,
        thresholds: tuple[tuple[str, int], ...] | None = None,
    ) -> None:
        self.taskset = taskset
        self.thresholds = resolve_thresholds(taskset, thresholds)

    def run(self, plan: ReleasePlan) -> Trace:
        """Execute the plan and return the complete trace.

        The run continues past the plan horizon until every released
        job completes, so response times are defined for all jobs.
        """
        counter = itertools.count()
        future: list[tuple[float, int, Job]] = []
        for task in self.taskset:
            for idx, release in enumerate(plan.for_task(task.name)):
                job = Job(task=task, release=release, index=idx)
                heapq.heappush(future, (release, next(counter), job))

        jobs: list[Job] = [j for (_, _, j) in future]
        # Ready entries: (effective priority, release, seq, job).
        # Unstarted jobs queue at their base priority; preempted jobs
        # re-queue at their threshold.
        ready: list[tuple[int, float, int, Job]] = []
        # Remaining phases of every started-but-unfinished job.
        pending_phases: dict[int, list[str]] = {}
        now = 0.0
        guard = 0
        max_steps = 30 * len(jobs) + 30

        def admit(until: float) -> None:
            while future and future[0][0] <= until:
                _, _, job = heapq.heappop(future)
                heapq.heappush(
                    ready,
                    (job.task.priority, job.release, next(counter), job),
                )

        def run_phase(job: Job, phase: str, start: float) -> float:
            task = job.task
            if phase == "copy_in":
                job.copy_in_start = start
                job.copy_in_end = start + task.copy_in
                job.copy_in_by = "cpu"
                return job.copy_in_end
            if phase == "exec":
                job.exec_start = start
                job.exec_end = start + task.exec_time
                return job.exec_end
            job.copy_out_start = start
            job.copy_out_end = start + task.copy_out
            return job.copy_out_end

        while future or ready:
            guard += 1
            if guard > max_steps:
                raise SimulationError(
                    "threshold simulation failed to drain jobs"
                )
            if not ready:
                release, _, job = heapq.heappop(future)
                now = max(now, release)
                heapq.heappush(
                    ready, (job.task.priority, job.release, next(counter), job)
                )
            admit(now)
            _, _, _, job = heapq.heappop(ready)
            theta = self.thresholds[job.task.name]
            phases = pending_phases.pop(
                id(job), ["copy_in", "exec", "copy_out"]
            )
            # Run phase chunks back-to-back until completion or until a
            # boundary where a ready task outranks the threshold.
            while phases:
                now = run_phase(job, phases.pop(0), now)
                admit(now)
                if phases and ready and ready[0][0] < theta:
                    pending_phases[id(job)] = phases
                    heapq.heappush(
                        ready, (theta, job.release, next(counter), job)
                    )
                    break

        return Trace(jobs=jobs, intervals=(), protocol=self.protocol)
