"""Trace metrics: response-time statistics and resource utilisation.

Turns a simulation trace into the quantities a systems evaluation
reports: per-task response-time statistics (min/mean/max/percentiles),
CPU and DMA busy fractions, interval-length statistics, and protocol
event counts (cancellations, urgent executions). A plain-text histogram
renderer is included since no plotting library is available offline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.sim.trace import Trace
from repro.types import TIME_EPS, Time


@dataclass(frozen=True)
class ResponseStats:
    """Response-time statistics of one task over a trace.

    ``count`` covers completed jobs only; ``incomplete`` counts jobs
    released but not finished by the end of the observed span (e.g.
    cut off at the simulation horizon). ``misses`` includes both
    completed-late jobs and incomplete jobs whose absolute deadline
    fell inside the span — a job that is overdue *and* unfinished is a
    miss, not a statistic to drop. ``p95`` uses the ``"higher"``
    percentile method, so it is always an observed response time and
    never interpolates below the tail on small samples.
    """

    task_name: str
    count: int
    minimum: Time
    mean: Time
    p95: Time
    maximum: Time
    deadline: Time
    misses: int
    incomplete: int = 0

    @property
    def miss_ratio(self) -> float:
        observed = self.count + self.incomplete
        return self.misses / observed if observed else 0.0


@dataclass(frozen=True)
class TraceMetrics:
    """Aggregate metrics of one simulation trace.

    Attributes:
        per_task: Response statistics per task name.
        cpu_busy_fraction: Fraction of the observed span the CPU spent
            executing (incl. urgent copy-ins performed by the CPU).
        dma_busy_fraction: Fraction spent on DMA copy-ins/copy-outs.
        interval_count: Number of scheduling intervals (0 for NPS).
        mean_interval_length: Mean interval length (nan for NPS).
        cancellations: Cancelled copy-ins observed (R3 events).
        urgent_executions: Jobs that ran urgent (R4/R5 events).
    """

    per_task: Mapping[str, ResponseStats]
    cpu_busy_fraction: float
    dma_busy_fraction: float
    interval_count: int
    mean_interval_length: float
    cancellations: int
    urgent_executions: int

    @property
    def worst_miss_ratio(self) -> float:
        return max(
            (s.miss_ratio for s in self.per_task.values()), default=0.0
        )


def _span(trace: Trace) -> tuple[Time, Time]:
    """Smallest window covering every recorded timestamp of the trace.

    Every non-``None`` phase stamp counts, not just releases and
    copy-out completions: a horizon-truncated job contributes its
    exec/copy-in durations to the busy sums, so the span must extend to
    those stamps too or busy fractions can exceed 1.0.
    """
    events: list[Time] = []
    for job in trace.jobs:
        events.append(job.release)
        for stamp in (
            job.copy_in_start,
            job.copy_in_end,
            job.exec_start,
            job.exec_end,
            job.copy_out_start,
            job.copy_out_end,
        ):
            if stamp is not None:
                events.append(stamp)
        for a, b in job.cancelled_copy_ins:
            events.append(a)
            events.append(b)
    if not events:
        raise SimulationError("cannot compute metrics of an empty trace")
    return min(events), max(events)


def compute_metrics(trace: Trace) -> TraceMetrics:
    """Compute :class:`TraceMetrics` for a completed trace."""
    start, end = _span(trace)
    span = max(end - start, 1e-12)

    per_task: dict[str, ResponseStats] = {}
    for name in sorted({j.task.name for j in trace.jobs}):
        all_jobs = trace.jobs_of(name)
        done = [j for j in all_jobs if j.completed]
        pending = [j for j in all_jobs if not j.completed]
        deadline = all_jobs[0].task.deadline
        # An unfinished job whose absolute deadline lies inside the
        # observed span has demonstrably missed it.
        overdue = sum(
            1 for j in pending if j.release + deadline <= end + TIME_EPS
        )
        if done:
            responses = np.array([j.response_time for j in done])
            late = int((responses > deadline + TIME_EPS).sum())
            per_task[name] = ResponseStats(
                task_name=name,
                count=len(done),
                minimum=float(responses.min()),
                mean=float(responses.mean()),
                p95=float(np.percentile(responses, 95, method="higher")),
                maximum=float(responses.max()),
                deadline=deadline,
                misses=late + overdue,
                incomplete=len(pending),
            )
        elif pending:
            per_task[name] = ResponseStats(
                task_name=name,
                count=0,
                minimum=math.nan,
                mean=math.nan,
                p95=math.nan,
                maximum=math.nan,
                deadline=deadline,
                misses=overdue,
                incomplete=len(pending),
            )

    cpu_busy = 0.0
    dma_busy = 0.0
    cancellations = 0
    urgent = 0
    # Under NPS every phase runs on the CPU; the interval protocols
    # always delegate copy-outs to the DMA (rule R2 / Property 2).
    copy_out_on_cpu = trace.protocol == "nps"
    for job in trace.jobs:
        if job.exec_start is not None and job.exec_end is not None:
            cpu_busy += job.exec_end - job.exec_start
        if job.copy_in_start is not None and job.copy_in_end is not None:
            duration = job.copy_in_end - job.copy_in_start
            if job.copy_in_by == "cpu":
                cpu_busy += duration
            else:
                dma_busy += duration
        if job.copy_out_start is not None and job.copy_out_end is not None:
            duration = job.copy_out_end - job.copy_out_start
            if copy_out_on_cpu:
                cpu_busy += duration
            else:
                dma_busy += duration
        for a, b in job.cancelled_copy_ins:
            dma_busy += b - a
        cancellations += len(job.cancelled_copy_ins)
        if job.urgent:
            urgent += 1

    lengths = [iv.length for iv in trace.intervals]
    return TraceMetrics(
        per_task=per_task,
        cpu_busy_fraction=cpu_busy / span,
        dma_busy_fraction=dma_busy / span,
        interval_count=len(trace.intervals),
        mean_interval_length=(
            float(np.mean(lengths)) if lengths else math.nan
        ),
        cancellations=cancellations,
        urgent_executions=urgent,
    )


def text_histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    title: str = "",
) -> str:
    """Render a horizontal text histogram of ``values``."""
    if not values:
        return f"{title}\n(no data)"
    data = np.asarray(values, dtype=float)
    counts, edges = np.histogram(data, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{lo:9.3f}-{hi:9.3f} |{bar:<{width}} {count}")
    return "\n".join(lines)


def render_metrics(metrics: TraceMetrics) -> str:
    """Human-readable metrics report."""
    lines = [
        f"intervals: {metrics.interval_count} "
        f"(mean length {metrics.mean_interval_length:.3f})"
        if metrics.interval_count
        else "intervals: none (NPS trace)",
        f"CPU busy: {metrics.cpu_busy_fraction:6.1%}   "
        f"DMA busy: {metrics.dma_busy_fraction:6.1%}",
        f"cancellations: {metrics.cancellations}   "
        f"urgent executions: {metrics.urgent_executions}",
        "",
        f"{'task':<12}{'jobs':>6}{'min':>9}{'mean':>9}{'p95':>9}"
        f"{'max':>9}{'D':>8}{'miss':>6}{'inc':>5}",
    ]
    for stats in metrics.per_task.values():
        lines.append(
            f"{stats.task_name:<12}{stats.count:>6}{stats.minimum:>9.3f}"
            f"{stats.mean:>9.3f}{stats.p95:>9.3f}{stats.maximum:>9.3f}"
            f"{stats.deadline:>8.2f}{stats.misses:>6}{stats.incomplete:>5}"
        )
    return "\n".join(lines)
