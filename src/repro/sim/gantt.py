"""ASCII Gantt rendering of simulation traces.

Draws the two timelines of the interval protocols (CPU and DMA) — or
the single CPU timeline of NPS — as fixed-width text, the format used
to reproduce the motivating example of Fig. 1 in the examples and
benchmarks (no plotting library is required offline).
"""

from __future__ import annotations

import math

from repro.sim.trace import Trace
from repro.types import Time


def _paint(row: list[str], start: Time, end: Time, scale: float, label: str) -> None:
    a = int(round(start * scale))
    b = max(a + 1, int(round(end * scale)))
    b = min(b, len(row))
    for pos in range(a, b):
        if 0 <= pos < len(row):
            row[pos] = "#"
    # Overlay the label inside the bar when it fits.
    text = label[: max(0, b - a)]
    for offset, ch in enumerate(text):
        pos = a + offset
        if 0 <= pos < len(row):
            row[pos] = ch


def render_gantt(
    trace: Trace,
    width: int = 100,
    until: Time | None = None,
) -> str:
    """Render a trace as an ASCII chart.

    Args:
        trace: A simulation trace.
        width: Character width of the time axis.
        until: Time horizon to draw (defaults to the last event).

    Returns:
        A multi-line string: a CPU row, a DMA row (when the protocol
        uses one), interval boundaries, and a time axis.
    """
    events: list[Time] = []
    for job in trace.jobs:
        for value in (job.copy_out_end, job.exec_end, job.copy_in_end):
            if value is not None:
                events.append(value)
    horizon = until if until is not None else (max(events) if events else 1.0)
    if horizon <= 0:
        horizon = 1.0
    scale = width / horizon

    cpu = [" "] * width
    dma = [" "] * width
    marks = [" "] * width

    for job in trace.jobs:
        if job.exec_start is not None and job.exec_start < horizon:
            if job.copy_in_by == "cpu" and job.copy_in_start is not None:
                _paint(cpu, job.copy_in_start, job.copy_in_end, scale, f"<{job.name}")
            _paint(cpu, job.exec_start, job.exec_end, scale, job.name)
        if (
            job.copy_in_by == "dma"
            and job.copy_in_start is not None
            and job.copy_in_start < horizon
        ):
            _paint(dma, job.copy_in_start, job.copy_in_end, scale, f"v{job.name}")
        for a, b in job.cancelled_copy_ins:
            if a < horizon and b > a:
                _paint(dma, a, b, scale, f"x{job.name}")
        if job.copy_out_start is not None and job.copy_out_start < horizon:
            _paint(dma, job.copy_out_start, job.copy_out_end, scale, f"^{job.name}")

    for interval in trace.intervals:
        pos = int(round(interval.start * scale))
        if 0 <= pos < width:
            marks[pos] = "|"

    axis = [" "] * width
    step = max(1.0, round(horizon / 10))
    tick = 0.0
    while tick <= horizon:
        pos = int(round(tick * scale))
        label = f"{tick:g}"
        for offset, ch in enumerate(label):
            if pos + offset < width:
                axis[pos + offset] = ch
        tick += step

    lines = [f"protocol: {trace.protocol}   (time 0..{horizon:g})"]
    lines.append("CPU |" + "".join(cpu))
    if trace.intervals or any(j.copy_in_by == "dma" for j in trace.jobs):
        lines.append("DMA |" + "".join(dma))
    if trace.intervals:
        lines.append("ivl |" + "".join(marks))
    lines.append("    |" + "".join(axis))
    legend = (
        "legend: name=execution, vX=copy-in, ^X=copy-out, xX=cancelled, "
        "<X=urgent CPU copy-in, |=interval start"
    )
    lines.append(legend)
    return "\n".join(lines)


def summarize_responses(trace: Trace) -> str:
    """Tabular per-task summary: max response vs deadline."""
    rows = ["task        max-response   deadline   ok"]
    by_task: dict[str, Time] = trace.response_times()
    deadlines = {j.task.name: j.task.deadline for j in trace.jobs}
    for name in sorted(by_task):
        response = by_task[name]
        deadline = deadlines[name]
        if math.isinf(response):
            rows.append(f"{name:<12}{'n/a':>12}{deadline:>11.2f}   -")
        else:
            ok = "yes" if response <= deadline + 1e-9 else "NO"
            rows.append(f"{name:<12}{response:>12.2f}{deadline:>11.2f}   {ok}")
    return "\n".join(rows)
