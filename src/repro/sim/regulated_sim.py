"""Non-preemptive simulator with memory bandwidth regulation.

The runtime counterpart of
:class:`repro.analysis.regulated.RegulatedAnalysis`: scheduling is
exactly :class:`repro.sim.nps_sim.NpsSimulator` (non-preemptive fixed
priorities, memory inline), but memory transfers draw on a per-core
regulator budget of ``Q`` transfer-time units per replenishment period
``P`` (replenished to ``Q`` at every multiple of ``P``, no
accumulation). A memory phase that exhausts the budget stalls until
the next replenishment; execution phases consume no budget. With no
regulation config (or ``Q == P``) the schedule is identical to NPS.
"""

from __future__ import annotations

import heapq
import itertools
import math

from repro.analysis.interface import RegulationConfig
from repro.errors import SimulationError
from repro.model.taskset import TaskSet
from repro.sim.releases import ReleasePlan
from repro.sim.trace import Job, Trace

#: Float guard for budget/period boundary comparisons.
_TINY = 1e-9


class _Regulator:
    """Budget bookkeeping of one core's memory traffic."""

    def __init__(self, config: RegulationConfig) -> None:
        self.config = config
        self._period_idx = 0
        self._used = 0.0

    def transfer(self, now: float, demand: float) -> float:
        """Advance a transfer of ``demand`` starting at ``now``.

        Returns the completion time; stalls at budget exhaustion until
        the next replenishment.
        """
        budget, period = self.config.budget, self.config.period
        # Each loop pass either transfers budget or crosses a period;
        # a transfer needs at most ceil(demand/budget) + 1 periods.
        limit = 10 + 4 * int(math.ceil(demand / budget + 1e-12))
        guard = 0
        while demand > _TINY:
            guard += 1
            if guard > limit:
                raise SimulationError("regulator failed to drain a transfer")
            period_end = (self._period_idx + 1) * period
            if now >= period_end - _TINY:
                # Crossed into a later period: replenish.
                self._period_idx = int(math.floor((now + _TINY) / period))
                self._used = 0.0
                continue
            available = budget - self._used
            if available <= _TINY:
                now = period_end
                continue
            chunk = min(demand, available, period_end - now)
            now += chunk
            demand -= chunk
            self._used += chunk
        return now


class RegulatedSimulator:
    """Simulate a release plan under bandwidth-regulated NPS.

    Args:
        taskset: The workload.
        regulation: The core's memory budget, the same object as
            ``AnalysisOptions.regulation``; ``None`` simulates
            unregulated memory (plain NPS timing).
    """

    protocol = "regulated"

    def __init__(
        self,
        taskset: TaskSet,
        regulation: RegulationConfig | None = None,
    ) -> None:
        self.taskset = taskset
        self.regulation = regulation

    def run(self, plan: ReleasePlan) -> Trace:
        """Execute the plan and return the complete trace.

        The run continues past the plan horizon until every released
        job completes, so response times are defined for all jobs.
        """
        counter = itertools.count()
        future: list[tuple[float, int, Job]] = []
        for task in self.taskset:
            for idx, release in enumerate(plan.for_task(task.name)):
                job = Job(task=task, release=release, index=idx)
                heapq.heappush(future, (release, next(counter), job))

        jobs: list[Job] = [j for (_, _, j) in future]
        ready: list[tuple[int, float, int, Job]] = []  # (prio, release, seq)
        regulator = (
            _Regulator(self.regulation) if self.regulation is not None else None
        )

        def memory_end(start: float, demand: float) -> float:
            if regulator is None:
                return start + demand
            return regulator.transfer(start, demand)

        now = 0.0
        guard = 0
        max_steps = 10 * len(jobs) + 10

        while future or ready:
            guard += 1
            if guard > max_steps:
                raise SimulationError(
                    "regulated simulation failed to drain jobs"
                )
            if not ready:
                if not future:
                    break
                release, _, job = heapq.heappop(future)
                now = max(now, release)
                heapq.heappush(
                    ready, (job.task.priority, job.release, next(counter), job)
                )
                continue
            # Admit everything released by `now` before picking.
            while future and future[0][0] <= now:
                _, _, job = heapq.heappop(future)
                heapq.heappush(
                    ready, (job.task.priority, job.release, next(counter), job)
                )
            _, _, _, job = heapq.heappop(ready)
            task = job.task
            job.copy_in_start = now
            job.copy_in_end = memory_end(now, task.copy_in)
            job.copy_in_by = "cpu"
            job.exec_start = job.copy_in_end
            job.exec_end = job.exec_start + task.exec_time
            job.copy_out_start = job.exec_end
            job.copy_out_end = memory_end(job.copy_out_start, task.copy_out)
            now = job.copy_out_end

        return Trace(jobs=jobs, intervals=(), protocol=self.protocol)
