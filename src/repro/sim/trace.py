"""Trace records produced by the simulators.

A :class:`Trace` holds one :class:`Job` per released job (with the
timing of each of its three phases) and, for the interval-based
protocols, one :class:`Interval` per scheduling time interval with the
CPU/DMA occupancy — enough to re-derive response times, check the
paper's structural properties, and draw Gantt charts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import SimulationError
from repro.model.task import Task
from repro.types import Time


@dataclass
class Job:
    """One job of a task moving through its three phases.

    Times are absolute simulation times; ``None`` marks a phase that
    has not happened (yet). ``copy_in_by`` is ``"dma"`` or ``"cpu"``
    (the latter only for urgent LS executions under the proposed
    protocol, rule R5).
    """

    task: Task
    release: Time
    index: int
    copy_in_start: Time | None = None
    copy_in_end: Time | None = None
    copy_in_by: str = "dma"
    cancelled_copy_ins: list[tuple[Time, Time]] = field(default_factory=list)
    exec_start: Time | None = None
    exec_end: Time | None = None
    exec_interval: int | None = None
    copy_out_start: Time | None = None
    copy_out_end: Time | None = None
    urgent: bool = False

    @property
    def name(self) -> str:
        return f"{self.task.name}#{self.index}"

    @property
    def completed(self) -> bool:
        return self.copy_out_end is not None

    @property
    def response_time(self) -> Time:
        """Copy-out completion minus release (paper Sec. II)."""
        if self.copy_out_end is None:
            raise SimulationError(f"{self.name} has not completed")
        return self.copy_out_end - self.release

    @property
    def was_cancelled(self) -> bool:
        return bool(self.cancelled_copy_ins)


@dataclass(frozen=True)
class Interval:
    """One scheduling time interval (Definition 1).

    Attributes:
        index: Position in the interval sequence.
        start: Interval start time.
        end: Interval end time (R6: the longer of CPU and DMA work).
        cpu_job: Name of the job executing on the CPU (None = idle).
        cpu_urgent: Whether the CPU occupant ran as urgent (R5).
        dma_load: Name of the job whose copy-in completed here.
        dma_unload: Name of the job whose copy-out ran here.
        dma_cancelled: Name of the job whose copy-in was cancelled (R3).
    """

    index: int
    start: Time
    end: Time
    cpu_job: str | None = None
    cpu_urgent: bool = False
    dma_load: str | None = None
    dma_unload: str | None = None
    dma_cancelled: str | None = None

    @property
    def length(self) -> Time:
        return self.end - self.start


class Trace:
    """Complete record of one simulation run."""

    def __init__(
        self,
        jobs: Iterable[Job],
        intervals: Iterable[Interval] = (),
        protocol: str = "",
    ) -> None:
        self.jobs: list[Job] = list(jobs)
        self.intervals: list[Interval] = list(intervals)
        self.protocol = protocol

    def jobs_of(self, task_name: str) -> list[Job]:
        """All jobs of one task, in release order."""
        return sorted(
            (j for j in self.jobs if j.task.name == task_name),
            key=lambda j: j.release,
        )

    def completed_jobs(self) -> list[Job]:
        return [j for j in self.jobs if j.completed]

    def max_response_time(self, task_name: str) -> Time:
        """Largest observed response time of a task's completed jobs."""
        responses = [
            j.response_time for j in self.jobs_of(task_name) if j.completed
        ]
        if not responses:
            return -math.inf
        return max(responses)

    def response_times(self) -> dict[str, Time]:
        """Max observed response per task (``-inf`` if none completed)."""
        names = {j.task.name for j in self.jobs}
        return {name: self.max_response_time(name) for name in names}

    def deadline_misses(self) -> list[Job]:
        """Completed jobs that finished after their deadline."""
        return [
            j
            for j in self.completed_jobs()
            if j.response_time > j.task.deadline + 1e-9
        ]

    def interval_at(self, time: Time) -> Interval | None:
        """The interval containing ``time`` (half-open on the right)."""
        for interval in self.intervals:
            if interval.start <= time < interval.end:
                return interval
        return None

    def __repr__(self) -> str:
        done = len(self.completed_jobs())
        return (
            f"Trace({self.protocol!r}, jobs={len(self.jobs)} "
            f"({done} completed), intervals={len(self.intervals)})"
        )
