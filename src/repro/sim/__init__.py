"""Discrete-event simulation of the three scheduling approaches.

The simulators execute concrete release patterns and record full traces
(per-job phase timings and per-interval CPU/DMA occupancy). They serve
to validate the analyses (no observed response time may exceed the
analytic bound), to check the protocol properties proved in the paper
(Properties 1-4) on real schedules, and to reproduce the motivating
example of Fig. 1.

* :class:`NpsSimulator` — non-preemptive fixed priority, memory phases
  executed inline by the CPU.
* :class:`WaslySimulator` — the double-buffered interval protocol of
  [3] (no cancellations or urgency).
* :class:`ProposedSimulator` — the paper's protocol, rules R1-R6.
* :class:`ThresholdSimulator` — limited preemption with per-task
  preemption thresholds (zoo protocol).
* :class:`RegulatedSimulator` — NPS under per-core memory bandwidth
  regulation (zoo protocol).
"""

from repro.sim.releases import (
    ReleasePlan,
    periodic_plan,
    sporadic_plan,
    synchronous_plan,
)
from repro.sim.trace import Interval, Job, Trace
from repro.sim.nps_sim import NpsSimulator
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.threshold_sim import ThresholdSimulator
from repro.sim.regulated_sim import RegulatedSimulator
from repro.sim.validate import (
    check_phase_ordering,
    check_blocking_bounds,
    check_trace,
)
from repro.sim.gantt import render_gantt
from repro.sim.metrics import TraceMetrics, compute_metrics, render_metrics
from repro.sim.adversarial import AdversarialResult, find_worst_response
from repro.sim.svg import save_trace_svg, trace_to_svg

__all__ = [
    "TraceMetrics",
    "compute_metrics",
    "render_metrics",
    "AdversarialResult",
    "find_worst_response",
    "trace_to_svg",
    "save_trace_svg",
    "ReleasePlan",
    "periodic_plan",
    "sporadic_plan",
    "synchronous_plan",
    "Job",
    "Interval",
    "Trace",
    "NpsSimulator",
    "WaslySimulator",
    "ProposedSimulator",
    "ThresholdSimulator",
    "RegulatedSimulator",
    "check_phase_ordering",
    "check_blocking_bounds",
    "check_trace",
    "render_gantt",
]
