"""Release patterns fed to the simulators.

A :class:`ReleasePlan` maps each task to the (sorted) list of absolute
release times of its jobs within a horizon. Plans are plain data so
tests can also hand-craft adversarial patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import SimulationError
from repro.model.taskset import TaskSet
from repro.types import Time


@dataclass(frozen=True)
class ReleasePlan:
    """Absolute release times per task name, each list sorted."""

    releases: Mapping[str, tuple[Time, ...]]
    horizon: Time

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise SimulationError("horizon must be positive")
        for name, times in self.releases.items():
            if list(times) != sorted(times):
                raise SimulationError(f"releases of {name} are not sorted")
            if times and times[0] < 0:
                raise SimulationError(f"negative release time for {name}")

    def for_task(self, name: str) -> tuple[Time, ...]:
        return tuple(self.releases.get(name, ()))

    @property
    def total_jobs(self) -> int:
        return sum(len(v) for v in self.releases.values())


def _check_min_separation(
    name: str, times: list[Time], min_separation: Time
) -> None:
    for a, b in zip(times, times[1:]):
        if b - a < min_separation - 1e-9:
            raise SimulationError(
                f"releases of {name} violate the minimum inter-arrival "
                f"({b - a} < {min_separation})"
            )


def periodic_plan(
    taskset: TaskSet,
    horizon: Time,
    phases: Mapping[str, Time] | None = None,
) -> ReleasePlan:
    """Strictly periodic releases with optional per-task phases."""
    phases = phases or {}
    releases: dict[str, tuple[Time, ...]] = {}
    for task in taskset:
        phase = float(phases.get(task.name, 0.0))
        if phase < 0:
            raise SimulationError(f"negative phase for {task.name}")
        times = []
        t = phase
        while t < horizon:
            times.append(t)
            t += task.period
        releases[task.name] = tuple(times)
    return ReleasePlan(releases=releases, horizon=horizon)


def synchronous_plan(taskset: TaskSet, horizon: Time) -> ReleasePlan:
    """All tasks released together at time zero, then periodically.

    The classic high-pressure pattern for fixed-priority scheduling.
    """
    return periodic_plan(taskset, horizon)


def sporadic_plan(
    taskset: TaskSet,
    horizon: Time,
    rng: np.random.Generator,
    max_extra_fraction: float = 0.5,
) -> ReleasePlan:
    """Random sporadic releases honouring minimum inter-arrival times.

    Consecutive releases are separated by ``T * (1 + U[0, extra])``,
    which keeps every generated pattern consistent with the tasks'
    sporadic arrival curves (a requirement for using simulated response
    times as analysis lower bounds).
    """
    if max_extra_fraction < 0:
        raise SimulationError("max_extra_fraction must be non-negative")
    releases: dict[str, tuple[Time, ...]] = {}
    for task in taskset:
        times: list[Time] = []
        t = float(rng.uniform(0.0, task.period))
        while t < horizon:
            times.append(t)
            t += task.period * (1.0 + float(rng.uniform(0.0, max_extra_fraction)))
        _check_min_separation(task.name, times, task.period)
        releases[task.name] = tuple(times)
    return ReleasePlan(releases=releases, horizon=horizon)
