"""Non-preemptive fixed-priority simulator (the NPS baseline).

No DMA: a job's copy-in, execution, and copy-out run back-to-back on
the CPU. Scheduling decisions happen only at job completions and at
releases into an idle system (non-preemptive fixed priorities).
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import SimulationError
from repro.model.taskset import TaskSet
from repro.sim.releases import ReleasePlan
from repro.sim.trace import Job, Trace


class NpsSimulator:
    """Simulate a release plan under non-preemptive fixed priorities."""

    protocol = "nps"

    def __init__(self, taskset: TaskSet) -> None:
        self.taskset = taskset

    def run(self, plan: ReleasePlan) -> Trace:
        """Execute the plan and return the complete trace.

        The run continues past the plan horizon until every released
        job completes, so response times are defined for all jobs.
        """
        counter = itertools.count()
        future: list[tuple[float, int, Job]] = []
        for task in self.taskset:
            for idx, release in enumerate(plan.for_task(task.name)):
                job = Job(task=task, release=release, index=idx)
                heapq.heappush(future, (release, next(counter), job))

        jobs: list[Job] = [j for (_, _, j) in future]
        ready: list[tuple[int, float, int, Job]] = []  # (prio, release, seq)
        now = 0.0
        guard = 0
        max_steps = 10 * len(jobs) + 10

        while future or ready:
            guard += 1
            if guard > max_steps:
                raise SimulationError("NPS simulation failed to drain jobs")
            if not ready:
                if not future:
                    break
                release, _, job = heapq.heappop(future)
                now = max(now, release)
                heapq.heappush(
                    ready, (job.task.priority, job.release, next(counter), job)
                )
                continue
            # Admit everything released by `now` before picking.
            while future and future[0][0] <= now:
                _, _, job = heapq.heappop(future)
                heapq.heappush(
                    ready, (job.task.priority, job.release, next(counter), job)
                )
            _, _, _, job = heapq.heappop(ready)
            task = job.task
            job.copy_in_start = now
            job.copy_in_end = now + task.copy_in
            job.copy_in_by = "cpu"
            job.exec_start = job.copy_in_end
            job.exec_end = job.exec_start + task.exec_time
            job.copy_out_start = job.exec_end
            job.copy_out_end = job.copy_out_start + task.copy_out
            now = job.copy_out_end

        return Trace(jobs=jobs, intervals=(), protocol=self.protocol)
