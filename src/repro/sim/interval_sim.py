"""Interval-based protocol simulators ([3] and the proposed protocol).

Both protocols share the double-buffered interval structure of
Sec. III-A / IV: at each interval start the two local-memory partitions
swap (R1), the DMA first copies out the previous occupant's output and
then copies in the highest-priority ready task (R2), the CPU executes
the task loaded during the previous interval, and the interval lasts as
long as the longer of the two (R6).

The proposed protocol adds the latency-sensitive machinery:

* **R3** — an LS release cancels the copy-in of any lower-priority
  task within the current interval: pending (not yet started),
  in progress (aborted at the release instant), or already completed
  but not yet executing (the loaded data is discarded; the DMA time is
  wasted either way). The eviction of a completed-but-unstarted load
  is required for the paper's Property 4 — its proof asserts that a
  lower-priority task can never execute in the interval following an
  LS release — and costs nothing extra (the data sits unused in the
  DMA partition). The cancelled task returns to the ready queue.
* **R4** — at the end of an interval in which a copy-in was cancelled
  or none ran, the highest-priority LS task released *inside* that
  interval becomes urgent.
* **R5** — an urgent task's copy-in is performed by the CPU itself,
  immediately followed by its execution (total ``l + C`` on the CPU).

:class:`WaslySimulator` is the same engine with the LS machinery off,
which is exactly protocol [3].
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import SimulationError
from repro.model.taskset import TaskSet
from repro.sim.releases import ReleasePlan
from repro.sim.trace import Interval, Job, Trace
from repro.types import TIME_EPS


class _IntervalEngine:
    """Shared interval-protocol engine; ``ls_rules`` toggles R3-R5."""

    protocol = "interval"
    ls_rules = False

    def __init__(self, taskset: TaskSet) -> None:
        self.taskset = taskset

    # ------------------------------------------------------------------
    def run(self, plan: ReleasePlan) -> Trace:
        """Execute the plan; runs past the horizon until jobs drain."""
        counter = itertools.count()
        future: list[tuple[float, int, Job]] = []
        for task in self.taskset:
            for idx, release in enumerate(plan.for_task(task.name)):
                job = Job(task=task, release=release, index=idx)
                heapq.heappush(future, (release, next(counter), job))
        jobs = [j for (_, _, j) in future]

        ready: list[tuple[int, float, int, Job]] = []
        loaded: Job | None = None  # copied-in last interval, runs now
        pending_out: Job | None = None  # executed last interval
        urgent: Job | None = None  # promoted by R4, runs now via R5
        now = 0.0
        intervals: list[Interval] = []
        guard = 0
        max_steps = 20 * len(jobs) + 20

        def admit(upto: float) -> None:
            while future and future[0][0] <= upto + TIME_EPS:
                _, _, job = heapq.heappop(future)
                heapq.heappush(
                    ready, (job.task.priority, job.release, next(counter), job)
                )

        while True:
            guard += 1
            if guard > max_steps:
                raise SimulationError("interval simulation failed to drain")
            admit(now)
            if (
                loaded is None
                and urgent is None
                and pending_out is None
                and not ready
            ):
                if not future:
                    break
                now = max(now, future[0][0])  # system idle: jump ahead
                continue

            start = now
            # ---------------- DMA side: copy-out first (R2) ----------
            dma_time = 0.0
            unload_name = None
            if pending_out is not None:
                pending_out.copy_out_start = start
                pending_out.copy_out_end = start + pending_out.task.copy_out
                dma_time += pending_out.task.copy_out
                unload_name = pending_out.name
                pending_out = None
            copy_in_offset = dma_time

            # ---------------- DMA side: copy-in (R2) -----------------
            load_job: Job | None = None
            cancelled_job: Job | None = None
            cancelled_name = None
            if ready:
                _, _, _, load_job = heapq.heappop(ready)

            # ---------------- CPU side (R5) ---------------------------
            cpu_time = 0.0
            executed: Job | None = None
            cpu_urgent = False
            if urgent is not None:
                executed, urgent = urgent, None
                executed.copy_in_start = start
                executed.copy_in_end = start + executed.task.copy_in
                executed.copy_in_by = "cpu"
                executed.urgent = True
                executed.exec_start = executed.copy_in_end
                executed.exec_end = (
                    executed.exec_start + executed.task.exec_time
                )
                cpu_time = executed.task.copy_in + executed.task.exec_time
                cpu_urgent = True
            elif loaded is not None:
                executed, loaded = loaded, None
                executed.exec_start = start
                executed.exec_end = start + executed.task.exec_time
                cpu_time = executed.task.exec_time

            # ---------------- R3: cancellation ------------------------
            if load_job is not None:
                in_start = start + copy_in_offset
                in_end = in_start + load_job.task.copy_in
                # Interval end if the copy-in stands: the loaded task
                # starts executing only at the *next* interval, so any
                # outranking LS release before that end evicts the load
                # (pending, in progress, or completed-but-unstarted).
                end_if_loaded = max(start + cpu_time, in_end)
                cancel_at = None
                if self.ls_rules:
                    cancel_at = self._first_cancelling_release(
                        future, load_job, start, end_if_loaded
                    )
                if cancel_at is not None:
                    # Aborted mid-copy (DMA time up to the release is
                    # wasted), never started, or completed and then
                    # discarded (full copy time wasted).
                    aborted_end = min(max(cancel_at, in_start), in_end)
                    load_job.cancelled_copy_ins.append((in_start, aborted_end))
                    dma_time = max(dma_time, aborted_end - start)
                    cancelled_job = load_job
                    cancelled_name = load_job.name
                    heapq.heappush(
                        ready,
                        (
                            load_job.task.priority,
                            load_job.release,
                            next(counter),
                            load_job,
                        ),
                    )
                    load_job = None
                else:
                    load_job.copy_in_start = in_start
                    load_job.copy_in_end = in_end
                    load_job.copy_in_by = "dma"
                    dma_time = copy_in_offset + load_job.task.copy_in

            end = start + max(cpu_time, dma_time)
            if end <= start + TIME_EPS:
                # Only possible when a zero-cost artefact slipped in;
                # avoid zero-length interval loops.
                end = start + TIME_EPS

            # ---------------- R4: promotion ---------------------------
            if self.ls_rules and (cancelled_job is not None or load_job is None):
                promoted = self._pop_urgent_candidate(future, start, end)
                if promoted is not None:
                    urgent = promoted

            if executed is not None:
                executed.exec_interval = len(intervals)
                pending_out = executed

            intervals.append(
                Interval(
                    index=len(intervals),
                    start=start,
                    end=end,
                    cpu_job=executed.name if executed else None,
                    cpu_urgent=cpu_urgent,
                    dma_load=load_job.name if load_job else None,
                    dma_unload=unload_name,
                    dma_cancelled=cancelled_name,
                )
            )
            loaded = load_job
            now = end

        return Trace(jobs=jobs, intervals=intervals, protocol=self.protocol)

    # ------------------------------------------------------------------
    def _first_cancelling_release(
        self,
        future: list[tuple[float, int, Job]],
        load_job: Job,
        start: float,
        window_end: float,
    ) -> float | None:
        """Earliest LS release in ``(start, window_end)`` that outranks
        the copy-in target (R3); ``None`` when the copy-in stands.
        ``window_end`` is the interval end assuming the load stands —
        past it the loaded task is already executing and is immune."""
        best = None
        for release, _, job in future:
            if not start + TIME_EPS < release < window_end - TIME_EPS:
                continue
            if not job.task.latency_sensitive:
                continue
            if job.task.priority >= load_job.task.priority:
                continue
            if best is None or release < best:
                best = release
        return best

    def _pop_urgent_candidate(
        self,
        future: list[tuple[float, int, Job]],
        start: float,
        end: float,
    ) -> Job | None:
        """Remove and return the highest-priority LS job released
        strictly inside ``(start, end]`` (R4); ``None`` if there is none."""
        candidates = [
            entry
            for entry in future
            if start + TIME_EPS < entry[0] <= end + TIME_EPS
            and entry[2].task.latency_sensitive
        ]
        if not candidates:
            return None
        chosen = min(candidates, key=lambda e: e[2].task.priority)
        future.remove(chosen)
        heapq.heapify(future)
        return chosen[2]


class WaslySimulator(_IntervalEngine):
    """Protocol [3]: double-buffered intervals, no LS machinery."""

    protocol = "wasly"
    ls_rules = False


class ProposedSimulator(_IntervalEngine):
    """The paper's protocol: rules R1-R6 including cancellation/urgency."""

    protocol = "proposed"
    ls_rules = True
