"""Command-line interface.

Subcommands::

    repro analyze     <taskset> [--protocol ...]  per-task WCRT bounds
    repro simulate    <taskset> [--protocol ...]  run a simulation + Gantt
    repro figure      <fig2a..fig2f> [--sets N] [--cache db.sqlite]
                                                  regenerate a Fig. 2 inset
    repro serve       [--workers N] [--cache db]  run a sweep-service
                                                  coordinator + local workers
    repro submit      <fig2a..fig2f> --port P     submit a sweep to a running
                                                  service (warm repeats are
                                                  served from the store)
    repro cache       stats|gc|clear <db.sqlite>  persistent-cache upkeep
    repro demo                                    the Fig. 1 motivating example
    repro sensitivity <taskset> [--knob ...]      critical scaling factor
    repro metrics     <taskset> [--protocol ...]  simulate + trace metrics
    repro witness     <taskset> <task>            decode the worst-case window
    repro audit       <taskset> [--task ...]      static MILP soundness audit
    repro lint        [--rule ...]                project invariant linter
    repro profile     <trace.jsonl>               aggregate a --trace event log

Task sets load from CSV (``name,C,l,u,T,D``) or lossless JSON
(see :mod:`repro.io`).

Task-set CSV format (header required)::

    name,C,l,u,T,D
    t0,2.0,0.4,0.4,12.0,10.0
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.interface import AnalysisOptions, RegulationConfig
from repro.analysis.registry import simulable_protocols, simulator_class
from repro.analysis.schedulability import PROTOCOLS, analyze_taskset
from repro.errors import ObservabilityError, ReproError
from repro.io import load_taskset
from repro.experiments.config import FIGURE2_INSETS, figure2_config
from repro.experiments.report import (
    ascii_plot,
    render_failure_ledger,
    render_sweep_table,
    sweep_to_csv,
)
from repro.experiments.runner import FailurePolicy, run_experiment
from repro.model.taskset import TaskSet
from repro.sim.gantt import render_gantt, summarize_responses
from repro.sim.releases import sporadic_plan, synchronous_plan

#: Protocols with a simulator (the carry NPS variant is analysis-only).
SIM_PROTOCOLS = simulable_protocols()


def _parse_protocols(value: str) -> tuple[str, ...] | None:
    """``--protocols a,b,c`` -> tuple (``None`` keeps the default).

    Names are validated against the protocol registry downstream
    (:func:`repro.experiments.config.figure2_config`), which turns an
    unknown name into a one-line ``error:`` message instead of a crash
    deep in the runner.
    """
    if not value:
        return None
    return tuple(p.strip() for p in value.split(",") if p.strip())


def _parse_regulation(value: str) -> RegulationConfig | None:
    """``--regulation BUDGET:PERIOD`` -> config (``None`` when unset)."""
    if not value:
        return None
    try:
        budget, _, period = value.partition(":")
        return RegulationConfig(budget=float(budget), period=float(period))
    except ValueError as exc:
        raise ReproError(
            f"bad --regulation {value!r} (expected BUDGET:PERIOD with "
            f"0 < budget <= period): {exc}"
        ) from None


def _parse_thresholds(value: str) -> tuple[tuple[str, int], ...] | None:
    """``--thresholds name=theta,...`` -> pairs (``None`` when unset)."""
    if not value:
        return None
    pairs: list[tuple[str, int]] = []
    for item in value.split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, theta = item.partition("=")
        if not sep:
            raise ReproError(
                f"bad --thresholds entry {item!r} (expected NAME=THETA)"
            )
        try:
            pairs.append((name.strip(), int(theta)))
        except ValueError:
            raise ReproError(
                f"bad --thresholds entry {item!r}: {theta!r} is not an "
                "integer threshold"
            ) from None
    return tuple(pairs) or None


def load_taskset_csv(path: str | Path) -> TaskSet:
    """Read a task set file (CSV by default, JSON by suffix)."""
    return load_taskset(path)


def _cmd_analyze(args: argparse.Namespace) -> int:
    taskset = load_taskset_csv(args.taskset)
    options = AnalysisOptions(
        stop_at_deadline=not args.exact,
        time_limit=args.time_limit,
    )
    result = analyze_taskset(
        taskset,
        args.protocol,
        options=options,
        method=args.method,
        ls_policy=args.ls_policy,
    )
    print(f"protocol: {args.protocol} (method={args.method})")
    print(f"{'task':<12}{'prio':>5}{'WCRT':>12}{'D':>10}  verdict")
    for name, wcrt, deadline, ok in result.summary_rows():
        prio = taskset.by_name(name).priority
        verdict = "schedulable" if ok else "MISS"
        print(f"{name:<12}{prio:>5}{wcrt:>12.3f}{deadline:>10.3f}  {verdict}")
    print(f"task set schedulable: {result.schedulable}")
    return 0 if result.schedulable else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    taskset = load_taskset_csv(args.taskset)
    if args.ls:
        taskset = taskset.with_ls_marks(args.ls.split(","))
    sim = simulator_class(args.protocol)(taskset)
    if args.pattern == "synchronous":
        plan = synchronous_plan(taskset, args.horizon)
    else:
        plan = sporadic_plan(
            taskset, args.horizon, np.random.default_rng(args.seed)
        )
    trace = sim.run(plan)
    print(render_gantt(trace, width=args.width, until=args.until))
    print()
    print(summarize_responses(trace))
    if args.svg:
        from repro.sim.svg import save_trace_svg

        save_trace_svg(trace, args.svg, until=args.until)
        print(f"SVG written to {args.svg}")
    misses = trace.deadline_misses()
    print(f"deadline misses: {len(misses)}")
    return 0 if not misses else 1


def _cmd_figure(args: argparse.Namespace) -> int:
    config = figure2_config(
        args.inset,
        sets_per_point=args.sets,
        seed=args.seed,
        method=args.method,
        protocols=_parse_protocols(args.protocols),
    )
    options = AnalysisOptions(
        time_limit=args.time_limit,
        preemption_thresholds=_parse_thresholds(args.thresholds),
        regulation=_parse_regulation(args.regulation),
    )

    def progress(point) -> None:
        ratios = "  ".join(
            f"{p}={point.ratios[p]:.2f}" for p in config.protocols
        )
        print(
            f"  {config.x_label}={point.x:g}: {ratios} "
            f"({point.elapsed_seconds:.1f}s)",
            flush=True,
        )

    fault_plan = None
    if args.inject:
        from repro.faults import load_plan

        fault_plan = load_plan(args.inject)
        print(
            f"injecting faults from {args.inject} "
            f"(plan {fault_plan.name or '(unnamed)'}, "
            f"{len(fault_plan.specs)} spec(s))"
        )
    workers = f", {args.jobs} workers" if args.jobs > 1 else ""
    print(
        f"running {args.inset} with {args.sets} task sets per point{workers}"
    )
    result = run_experiment(
        config,
        options=options,
        progress=progress,
        failure_policy=args.failure_policy,
        checkpoint_path=args.checkpoint or None,
        resume=args.resume,
        jobs=args.jobs,
        trace_path=args.trace or None,
        fault_plan=fault_plan,
        cache_path=args.cache or None,
    )
    if args.trace:
        print(f"trace written to {args.trace}")
    print()
    print(render_sweep_table(result))
    print()
    print(ascii_plot(result))
    if result.failures:
        print()
        print(render_failure_ledger(result))
    if args.csv:
        Path(args.csv).write_text(sweep_to_csv(result))
        print(f"CSV written to {args.csv}")
    if args.svg:
        from repro.experiments.figures import save_sweep_svg

        save_sweep_svg(result, args.svg)
        print(f"SVG written to {args.svg}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    fault_plan = None
    if args.inject:
        from repro.faults import load_plan

        fault_plan = load_plan(args.inject)
        print(
            f"injecting faults from {args.inject} "
            f"(plan {fault_plan.name or '(unnamed)'}, "
            f"{len(fault_plan.specs)} spec(s))"
        )

    def ready(port: int) -> None:
        print(
            f"sweep service listening on {args.host}:{port} "
            f"({args.workers} local worker(s))",
            flush=True,
        )

    serve(
        args.host,
        args.port,
        workers=args.workers,
        cache_path=args.cache or None,
        checkpoint_dir=args.checkpoint_dir or None,
        trace_dir=args.trace_dir or None,
        fault_plan=fault_plan,
        max_sweeps=args.sweeps,
        ready=ready,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import submit_sweep

    config = figure2_config(
        args.inset, sets_per_point=args.sets, seed=args.seed,
        method=args.method,
        protocols=_parse_protocols(args.protocols),
    )
    options = AnalysisOptions(
        time_limit=args.time_limit,
        preemption_thresholds=_parse_thresholds(args.thresholds),
        regulation=_parse_regulation(args.regulation),
    )
    print(
        f"submitting {args.inset} ({args.sets} task sets per point) "
        f"to {args.host}:{args.port}"
    )

    def unit_progress(done: int, total: int, served: int) -> None:
        print(
            f"\r  units {done}/{total} ({served} served from store)",
            end="",
            flush=True,
        )

    def progress(point: dict) -> None:
        ratios = "  ".join(
            f"{p}={point['ratios'][p]:.2f}" for p in config.protocols
        )
        print(f"\r  {config.x_label}={point['x']:g}: {ratios}")

    result = submit_sweep(
        args.host,
        args.port,
        config,
        options=options,
        failure_policy=args.failure_policy,
        progress=progress,
        unit_progress=unit_progress,
    )
    print()
    print(render_sweep_table(result))
    if result.failures:
        print()
        print(render_failure_ledger(result))
    if args.csv:
        Path(args.csv).write_text(sweep_to_csv(result))
        print(f"CSV written to {args.csv}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.analysis.store import PersistentStore

    store = PersistentStore(args.database)
    if not store.path.exists():
        # gc/clear would otherwise create an empty store just to
        # maintain it; a typo'd path should fail loudly instead.
        raise ReproError(f"no cache database at {store.path}")
    if args.action == "stats":
        for name, value in store.stats().items():
            print(f"{name:<16}{value}")
        return 0
    if args.action == "gc":
        removed = store.gc(args.keep)
        print(f"gc: removed {removed} entr(ies), kept {len(store)}")
        return 0
    removed = store.clear()
    print(f"clear: removed {removed} entr(ies)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import (
        aggregate_events,
        read_trace_lenient,
        reconcile,
        render_profile,
    )

    events, corruption = read_trace_lenient(args.trace)
    if not events:
        detail = (
            f"{corruption.total} corrupt line(s) skipped"
            if corruption.total
            else "the file is empty or not a JSONL trace"
        )
        raise ObservabilityError(
            f"trace {args.trace} contains no valid events ({detail})"
        )
    report = aggregate_events(events)
    report.corruption = corruption.as_dict()
    print(render_profile(report, timings=not args.no_timings))
    if args.checkpoint:
        from repro.experiments.persistence import read_checkpoint_points

        points = read_checkpoint_points(args.checkpoint, tolerant=True)
        problems = reconcile(report, points.values())
        print()
        if problems and not corruption.total:
            for problem in problems:
                print(f"reconciliation MISMATCH: {problem}")
            return 1
        if corruption.total:
            # A corrupt trace legitimately under-reports: say exactly
            # how much was lost instead of failing the reconciliation.
            print(
                f"note: {corruption.total} corrupt trace line(s) "
                f"skipped; counters may under-report"
            )
            for problem in problems:
                print(f"reconciliation gap (corrupt trace): {problem}")
            return 0
        print(
            f"trace reconciles with {args.checkpoint}: "
            f"cache counters and failure ledger match exactly"
        )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    # Defer to the packaged example so CLI and docs stay in sync.
    from repro.examples_support.figure1 import run_figure1_demo

    print(run_figure1_demo())
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.analysis.sensitivity import critical_scaling_factor

    taskset = load_taskset(args.taskset)
    result = critical_scaling_factor(
        taskset,
        knob=args.knob,
        protocol=args.protocol,
        method=args.method,
        tolerance=args.tolerance,
    )
    print(
        f"knob={result.knob} protocol={args.protocol}: "
        f"critical factor {result.critical_factor:.3f} "
        f"({result.evaluations} schedulability tests; "
        f"schedulable at 1.0: {result.schedulable_at_one})"
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.sim.metrics import compute_metrics, render_metrics

    taskset = load_taskset(args.taskset)
    if args.ls:
        taskset = taskset.with_ls_marks(args.ls.split(","))
    plan = sporadic_plan(
        taskset, args.horizon, np.random.default_rng(args.seed)
    )
    trace = simulator_class(args.protocol)(taskset).run(plan)
    print(f"protocol: {args.protocol}, {plan.total_jobs} jobs simulated")
    print(render_metrics(compute_metrics(trace)))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    from repro.analysis.proposed.formulation import (
        AnalysisMode,
        build_delay_milp,
    )
    from repro.analysis.proposed.witness import (
        extract_witness,
        validate_witness,
    )

    taskset = load_taskset(args.taskset)
    if args.ls:
        taskset = taskset.with_ls_marks(args.ls.split(","))
    task = taskset.by_name(args.task)
    if task.latency_sensitive:
        mode = AnalysisMode.LS_CASE_A
    elif args.protocol == "wasly":
        mode = AnalysisMode.WASLY
    else:
        mode = AnalysisMode.NLS
    window = args.window
    if window is None:
        window = max(
            task.deadline - task.exec_time - task.copy_out, task.copy_in
        )
    built = build_delay_milp(taskset, task, window, mode)
    solution = built.model.solve()
    witness = extract_witness(built, solution, task.name)
    validate_witness(witness)
    print(witness.render())
    print(
        f"response bound at this window: "
        f"{solution.objective + task.copy_out:.3f} (deadline {task.deadline:g})"
    )
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.proposed.formulation import (
        AnalysisMode,
        build_delay_milp,
    )
    from repro.milp.audit import audit_delay_milp

    taskset = load_taskset(args.taskset)
    if args.ls:
        taskset = taskset.with_ls_marks(args.ls.split(","))
    tasks = [taskset.by_name(args.task)] if args.task else list(taskset)
    failed = 0
    for task in tasks:
        if task.latency_sensitive:
            modes = [AnalysisMode.LS_CASE_A, AnalysisMode.LS_CASE_B]
        elif args.protocol == "wasly":
            modes = [AnalysisMode.WASLY]
        else:
            modes = [AnalysisMode.NLS]
        window = args.window
        if window is None:
            window = max(
                task.deadline - task.exec_time - task.copy_out, task.copy_in
            )
        for mode in modes:
            built = build_delay_milp(
                taskset,
                task,
                0.0 if mode is AnalysisMode.LS_CASE_B else window,
                mode,
            )
            report = audit_delay_milp(built, taskset, task)
            print(report.render())
            if not report.ok:
                failed += 1
    verdict = "FAILED" if failed else "passed"
    # The machine-readable reports own stdout; counts are commentary.
    print(
        f"audit {verdict}: {len(tasks)} task(s), "
        f"{failed} model(s) with errors",
        file=sys.stderr,
    )
    return 1 if failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Exit 0 on a clean tree, 1 on findings, 2 on usage/config errors.

    Findings go to stdout (one per line, plus optional SARIF); counts
    and the all-clear go to stderr so piped output stays clean.
    """
    import json

    from repro.lint import (
        load_baseline,
        load_project,
        run_lint,
        suppress_baseline,
        to_sarif,
        write_baseline,
    )

    project = load_project()
    violations = sorted(
        project.findings + run_lint(project.modules, rules=args.rule),
        key=lambda v: (v.path, v.line, v.rule),
    )
    if args.update_baseline:
        if not args.baseline:
            print(
                "error: --update-baseline requires --baseline PATH",
                file=sys.stderr,
            )
            return 2
        write_baseline(violations, args.baseline)
        print(
            f"baseline {args.baseline} updated with "
            f"{len(violations)} finding(s)",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        violations = suppress_baseline(violations, baseline)
    if args.sarif:
        Path(args.sarif).write_text(
            json.dumps(to_sarif(violations), indent=2) + "\n"
        )
    for violation in violations:
        print(violation.render())
    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors
    if violations:
        print(
            f"{len(violations)} finding(s): {errors} error(s), "
            f"{warnings} warning(s)",
            file=sys.stderr,
        )
    else:
        print("all project invariants hold", file=sys.stderr)
    failing = len(violations) if args.strict else errors
    return 1 if failing else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Predictable Memory-CPU Co-Scheduling with "
            "Support for Latency-Sensitive Tasks' (DAC 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_an = sub.add_parser("analyze", help="per-task WCRT bounds")
    p_an.add_argument("taskset", help="task-set CSV file")
    p_an.add_argument("--protocol", choices=PROTOCOLS, default="proposed")
    p_an.add_argument("--method", choices=("milp", "lp", "closed_form"), default="milp")
    p_an.add_argument(
        "--ls-policy",
        default="greedy",
        help="LS policy for the proposed protocol (greedy/as_marked/...)",
    )
    p_an.add_argument(
        "--exact",
        action="store_true",
        help="iterate past the deadline to the true fixpoint",
    )
    p_an.add_argument("--time-limit", type=float, default=None)
    p_an.set_defaults(func=_cmd_analyze)

    p_sim = sub.add_parser("simulate", help="simulate and draw a Gantt chart")
    p_sim.add_argument("taskset", help="task-set CSV file")
    p_sim.add_argument("--protocol", choices=SIM_PROTOCOLS, default="proposed")
    p_sim.add_argument(
        "--pattern", choices=("synchronous", "sporadic"), default="synchronous"
    )
    p_sim.add_argument("--horizon", type=float, default=200.0)
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--width", type=int, default=100)
    p_sim.add_argument("--until", type=float, default=None)
    p_sim.add_argument(
        "--ls", default="", help="comma-separated names to mark LS"
    )
    p_sim.add_argument(
        "--svg", default="", help="also write the schedule as an SVG file"
    )
    p_sim.set_defaults(func=_cmd_simulate)

    p_fig = sub.add_parser("figure", help="regenerate a Fig. 2 inset")
    p_fig.add_argument("inset", choices=sorted(FIGURE2_INSETS))
    p_fig.add_argument("--sets", type=int, default=50)
    p_fig.add_argument("--seed", type=int, default=2020)
    p_fig.add_argument("--method", choices=("milp", "lp", "closed_form"), default="milp")
    p_fig.add_argument("--time-limit", type=float, default=None)
    p_fig.add_argument(
        "--protocols",
        default="",
        help="comma-separated registered protocol names to compare "
        f"(default: paper's three; registered: {', '.join(PROTOCOLS)})",
    )
    p_fig.add_argument(
        "--thresholds",
        default="",
        help="per-task preemption thresholds for the 'threshold' "
        "protocol, as NAME=THETA,... (default: own priorities)",
    )
    p_fig.add_argument(
        "--regulation",
        default="",
        help="memory bandwidth budget for the 'regulated' protocol, "
        "as BUDGET:PERIOD (default: unregulated)",
    )
    p_fig.add_argument("--csv", default="", help="write the series to a CSV file")
    p_fig.add_argument(
        "--svg",
        default="",
        help="write the comparative sweep figure as an SVG file "
        "(one series per protocol)",
    )
    p_fig.add_argument(
        "--checkpoint",
        default="",
        help="persist each completed point to this JSON file (atomic)",
    )
    p_fig.add_argument(
        "--resume",
        action="store_true",
        help="reload --checkpoint and re-evaluate only unfinished points",
    )
    p_fig.add_argument(
        "--failure-policy",
        choices=[p.value for p in FailurePolicy],
        default=FailurePolicy.COUNT_UNSCHEDULABLE.value,
        help="how failed taskset/protocol pairs enter the ratios",
    )
    p_fig.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (results are bit-identical "
        "to --jobs 1)",
    )
    p_fig.add_argument(
        "--trace",
        default="",
        help="write a structured JSONL event trace of the run here "
        "(see 'repro profile')",
    )
    p_fig.add_argument(
        "--inject",
        default="",
        help="inject deterministic faults from this JSON fault plan "
        "(chaos testing; see repro.faults)",
    )
    p_fig.add_argument(
        "--cache",
        default="",
        help="back the analysis cache with this persistent sqlite "
        "store, shared across runs and --jobs workers (results are "
        "bit-identical with or without it)",
    )
    p_fig.set_defaults(func=_cmd_figure)

    p_srv = sub.add_parser(
        "serve",
        help="run a sweep-service coordinator with local workers",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=0,
        help="port to bind (0 picks a free one, printed on startup)",
    )
    p_srv.add_argument(
        "--workers", type=int, default=2,
        help="local worker processes to spawn (dead ones are replaced)",
    )
    p_srv.add_argument(
        "--cache", default="",
        help="persistent sqlite store backing both the per-solve cache "
        "and the finished-unit tier (repeat submits are served from it)",
    )
    p_srv.add_argument(
        "--checkpoint-dir", default="",
        help="directory of per-sweep checkpoints (keyed by config "
        "digest); a restarted coordinator resumes from them",
    )
    p_srv.add_argument(
        "--trace-dir", default="",
        help="directory of per-sweep JSONL event traces",
    )
    p_srv.add_argument(
        "--sweeps", type=int, default=None,
        help="exit after this many processed sweeps (default: serve "
        "until interrupted)",
    )
    p_srv.add_argument(
        "--inject", default="",
        help="inject deterministic faults from this JSON fault plan "
        "(disables the unit-result store for the run)",
    )
    p_srv.set_defaults(func=_cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit a Fig. 2 sweep to a running sweep service"
    )
    p_sub.add_argument("inset", choices=sorted(FIGURE2_INSETS))
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, required=True)
    p_sub.add_argument("--sets", type=int, default=50)
    p_sub.add_argument("--seed", type=int, default=2020)
    p_sub.add_argument(
        "--method", choices=("milp", "lp", "closed_form"), default="milp"
    )
    p_sub.add_argument("--time-limit", type=float, default=None)
    p_sub.add_argument(
        "--protocols",
        default="",
        help="comma-separated registered protocol names to compare "
        "(default: paper's three)",
    )
    p_sub.add_argument(
        "--thresholds",
        default="",
        help="per-task preemption thresholds for the 'threshold' "
        "protocol, as NAME=THETA,... (default: own priorities)",
    )
    p_sub.add_argument(
        "--regulation",
        default="",
        help="memory bandwidth budget for the 'regulated' protocol, "
        "as BUDGET:PERIOD (default: unregulated)",
    )
    p_sub.add_argument(
        "--failure-policy",
        choices=[p.value for p in FailurePolicy],
        default=FailurePolicy.COUNT_UNSCHEDULABLE.value,
    )
    p_sub.add_argument(
        "--csv", default="", help="write the series to a CSV file"
    )
    p_sub.set_defaults(func=_cmd_submit)

    p_cache = sub.add_parser(
        "cache", help="inspect or prune a persistent analysis cache"
    )
    p_cache.add_argument("action", choices=("stats", "gc", "clear"))
    p_cache.add_argument("database", help="sqlite file written by --cache")
    p_cache.add_argument(
        "--keep",
        type=int,
        default=100_000,
        help="entries to retain under 'gc' (most recently written first)",
    )
    p_cache.set_defaults(func=_cmd_cache)

    p_prof = sub.add_parser(
        "profile",
        help="aggregate a --trace event log into a per-phase report",
    )
    p_prof.add_argument("trace", help="JSONL trace written by --trace")
    p_prof.add_argument(
        "--no-timings",
        action="store_true",
        help="render only the deterministic sections (identical for "
        "--jobs 1 and --jobs N runs of the same config)",
    )
    p_prof.add_argument(
        "--checkpoint",
        default="",
        help="reconcile the trace against this run checkpoint "
        "(exit 1 on any counter mismatch)",
    )
    p_prof.set_defaults(func=_cmd_profile)

    p_demo = sub.add_parser("demo", help="the Fig. 1 motivating example")
    p_demo.set_defaults(func=_cmd_demo)

    p_sens = sub.add_parser(
        "sensitivity", help="critical scaling factor of a task set"
    )
    p_sens.add_argument("taskset")
    p_sens.add_argument(
        "--knob", choices=("execution", "memory", "deadline"),
        default="execution",
    )
    p_sens.add_argument("--protocol", choices=PROTOCOLS, default="proposed")
    p_sens.add_argument("--method", choices=("milp", "lp", "closed_form"),
                        default="milp")
    p_sens.add_argument("--tolerance", type=float, default=0.02)
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_met = sub.add_parser(
        "metrics", help="simulate and report trace metrics"
    )
    p_met.add_argument("taskset")
    p_met.add_argument("--protocol", choices=SIM_PROTOCOLS, default="proposed")
    p_met.add_argument("--horizon", type=float, default=1000.0)
    p_met.add_argument("--seed", type=int, default=1)
    p_met.add_argument("--ls", default="")
    p_met.set_defaults(func=_cmd_metrics)

    p_wit = sub.add_parser(
        "witness", help="decode the MILP's worst-case schedule for a task"
    )
    p_wit.add_argument("taskset")
    p_wit.add_argument("task", help="name of the task under analysis")
    p_wit.add_argument("--protocol", choices=("proposed", "wasly"),
                       default="proposed")
    p_wit.add_argument("--window", type=float, default=None,
                       help="delay window (default: deadline-induced)")
    p_wit.add_argument("--ls", default="", help="names to mark LS")
    p_wit.set_defaults(func=_cmd_witness)

    p_aud = sub.add_parser(
        "audit",
        help="static soundness audit of the delay MILPs (no solve)",
    )
    p_aud.add_argument("taskset", help="task-set CSV/JSON file")
    p_aud.add_argument(
        "--task", default="", help="audit only this task (default: all)"
    )
    p_aud.add_argument(
        "--protocol", choices=("proposed", "wasly"), default="proposed"
    )
    p_aud.add_argument(
        "--window", type=float, default=None,
        help="delay window (default: deadline-induced)",
    )
    p_aud.add_argument("--ls", default="", help="names to mark LS")
    p_aud.set_defaults(func=_cmd_audit)

    p_lint = sub.add_parser(
        "lint", help="run the project invariant linter over src/repro"
    )
    from repro.lint import RULES

    p_lint.add_argument(
        "--rule",
        action="append",
        choices=sorted(RULES),
        help="run only this rule (repeatable; default: all)",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (unprovable facts) as failures",
    )
    p_lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON file of grandfathered finding fingerprints",
    )
    p_lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    p_lint.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write the findings as a SARIF 2.1.0 log",
    )
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
