"""A pure-Python branch-and-bound MILP backend.

Solves LP relaxations with :func:`scipy.optimize.linprog` (HiGHS LP
simplex/IPM) and branches on fractional integer variables. It exists to
cross-validate the primary :class:`repro.milp.HighsBackend` on small
instances — two independent code paths reaching the same optimum is the
closest offline substitute for checking our formulation against a
second industrial solver.

The implementation is best-first (max relaxation bound on top), with
most-fractional branching and an optional node budget.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import linprog

from repro.errors import SolverError
from repro.milp.model import CompiledMilp, MilpBackend, MilpModel
from repro.milp.solution import MilpSolution, SolveStatus

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by decreasing relaxation bound."""

    sort_key: float
    counter: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


class BranchBoundBackend(MilpBackend):
    """Best-first branch and bound over HiGHS LP relaxations.

    Attributes:
        max_nodes: Node budget; exceeding it returns ``TIME_LIMIT``
            status with the best *dual* bound as the objective (safe
            for delay maximisation).
        time_limit: Optional wall-clock budget in seconds.
        int_tol: Integrality tolerance.
    """

    name = "branch_bound"

    def __init__(
        self,
        max_nodes: int = 20000,
        time_limit: float | None = None,
        int_tol: float = _INT_TOL,
    ) -> None:
        if max_nodes <= 0:
            raise SolverError("max_nodes must be positive")
        self.max_nodes = max_nodes
        self.time_limit = time_limit
        self.int_tol = int_tol

    # ------------------------------------------------------------------
    def _relax(
        self,
        compiled: CompiledMilp,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> tuple[float, np.ndarray] | None:
        """Solve one LP relaxation. Returns (objective, x) or None."""
        n = compiled.num_vars
        a_ub_rows = []
        b_ub = []
        a_eq_rows = []
        b_eq = []
        for r in range(compiled.num_rows):
            row = compiled.row_matrix[r]
            lo, hi = compiled.row_lower[r], compiled.row_upper[r]
            if lo == hi:
                a_eq_rows.append(row)
                b_eq.append(lo)
                continue
            if np.isfinite(hi):
                a_ub_rows.append(row)
                b_ub.append(hi)
            if np.isfinite(lo):
                a_ub_rows.append(-row)
                b_ub.append(-lo)
        res = linprog(
            c=-compiled.objective,
            A_ub=np.array(a_ub_rows) if a_ub_rows else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq_rows) if a_eq_rows else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=list(zip(lower, upper)),
            method="highs",
        )
        if not res.success:
            return None
        x = np.asarray(res.x, dtype=float)
        return float(compiled.objective @ x), x

    def solve(self, model: MilpModel) -> MilpSolution:
        compiled = model.compile()
        start = time.perf_counter()
        counter = itertools.count()
        int_indices = np.flatnonzero(compiled.integrality)

        root = self._relax(compiled, compiled.var_lower, compiled.var_upper)
        if root is None:
            return MilpSolution(
                status=SolveStatus.INFEASIBLE,
                runtime_seconds=time.perf_counter() - start,
                backend=self.name,
            )
        root_obj, _root_x = root
        if not np.isfinite(root_obj):
            return MilpSolution(
                status=SolveStatus.UNBOUNDED,
                runtime_seconds=time.perf_counter() - start,
                backend=self.name,
            )

        heap: list[_Node] = [
            _Node(
                sort_key=-root_obj,
                counter=next(counter),
                lower=compiled.var_lower.copy(),
                upper=compiled.var_upper.copy(),
            )
        ]
        best_obj = -np.inf
        best_x: np.ndarray | None = None
        nodes = 0
        hit_budget = False

        while heap:
            if nodes >= self.max_nodes or (
                self.time_limit is not None
                and time.perf_counter() - start > self.time_limit
            ):
                hit_budget = True
                break
            node = heapq.heappop(heap)
            dual_bound = -node.sort_key
            if dual_bound <= best_obj + 1e-9:
                continue  # cannot improve the incumbent
            nodes += 1
            relaxed = self._relax(compiled, node.lower, node.upper)
            if relaxed is None:
                continue
            obj, x = relaxed
            if obj <= best_obj + 1e-9:
                continue
            frac = np.abs(x[int_indices] - np.round(x[int_indices]))
            if int_indices.size == 0 or np.all(frac <= self.int_tol):
                # Integral solution: new incumbent.
                best_obj, best_x = obj, x
                continue
            branch_pos = int(np.argmax(frac))
            var_idx = int(int_indices[branch_pos])
            floor_val = np.floor(x[var_idx])
            # Down child: x_var <= floor
            lo_d, hi_d = node.lower.copy(), node.upper.copy()
            hi_d[var_idx] = floor_val
            # Up child: x_var >= floor + 1
            lo_u, hi_u = node.lower.copy(), node.upper.copy()
            lo_u[var_idx] = floor_val + 1.0
            for lo_c, hi_c in ((lo_d, hi_d), (lo_u, hi_u)):
                if lo_c[var_idx] > hi_c[var_idx]:
                    continue
                heapq.heappush(
                    heap,
                    _Node(
                        sort_key=-obj,  # parent bound is valid for children
                        counter=next(counter),
                        lower=lo_c,
                        upper=hi_c,
                    ),
                )

        elapsed = time.perf_counter() - start
        if best_x is None:
            if hit_budget:
                # No incumbent but a valid dual bound: report it so a
                # delay-maximisation caller still gets a safe bound.
                return MilpSolution(
                    status=SolveStatus.TIME_LIMIT,
                    objective=root_obj + compiled.objective_constant,
                    values={
                        var: float("nan") for var in compiled.variables
                    },
                    runtime_seconds=elapsed,
                    backend=self.name,
                    node_count=nodes,
                )
            return MilpSolution(
                status=SolveStatus.INFEASIBLE,
                runtime_seconds=elapsed,
                backend=self.name,
                node_count=nodes,
            )

        status = SolveStatus.OPTIMAL
        objective = best_obj
        if hit_budget:
            status = SolveStatus.TIME_LIMIT
            # Remaining open nodes cap how much better the optimum can be.
            open_bound = max((-n.sort_key for n in heap), default=best_obj)
            objective = max(best_obj, open_bound)
        x = best_x.copy()
        x[int_indices] = np.round(x[int_indices])
        values = {var: float(x[var.index]) for var in compiled.variables}
        return MilpSolution(
            status=status,
            objective=objective + compiled.objective_constant,
            values=values,
            runtime_seconds=elapsed,
            backend=self.name,
            node_count=nodes,
        )
