"""LP-relaxation backend and batched LP screening.

Solves a model with all integrality constraints dropped. For a
*maximisation* the relaxed optimum upper-bounds the MILP optimum, so —
for the delay analyses in this package — the result is still a safe
(more pessimistic) delay bound at a fraction of the cost: one LP solve,
no branching. Used as the middle tier of the verdict pipeline
(closed form → LP → MILP) and as an ablation axis.

:func:`screen_batch` extends the same soundness argument to a whole
task set at once: independent relaxations are joined into one
block-diagonal LP (their feasible sets do not interact, so the joint
optimum decomposes into the per-block optima) and solved in a single
HiGHS call, replacing per-window Python/solver round-trips with one
vectorised assembly. Batched bounds are *screening* values: each is a
safe upper bound for its block, but its floating-point value may
differ in the last ulp from a standalone solve, so callers must keep
them scope-local (never in the cross-run persistent cache).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import block_diag, csc_matrix

from repro.milp.model import CompiledMilp, MilpBackend, MilpModel
from repro.milp.solution import MilpSolution, SolveStatus

_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.TIME_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def _relaxed(
    c: np.ndarray,
    constraints: LinearConstraint | None,
    bounds: Bounds,
) -> "object":
    """One LP solve (integrality dropped), with the status-4 retry."""
    result = milp(
        c=c,
        constraints=constraints,
        bounds=bounds,
        integrality=np.zeros(len(c), dtype=int),
    )
    if result.status == 4:
        result = milp(
            c=c,
            constraints=constraints,
            bounds=bounds,
            integrality=np.zeros(len(c), dtype=int),
            options={"presolve": False},
        )
    return result


class LpRelaxationBackend(MilpBackend):
    """Solve the LP relaxation (integrality dropped) with HiGHS."""

    name = "lp_relaxation"

    def solve(self, model: MilpModel) -> MilpSolution:
        return self.solve_compiled(model.compile())

    def solve_compiled(self, compiled: CompiledMilp) -> MilpSolution:
        """Solve from an existing compilation (no model re-lowering).

        The incremental fixpoint driver keeps one compiled model alive
        and patches its row bounds between iterations; this entry point
        lets the LP screen reuse that compilation directly.
        """
        constraints = None
        if compiled.num_rows:
            constraints = LinearConstraint(
                compiled.row_matrix, compiled.row_lower, compiled.row_upper
            )
        start = time.perf_counter()
        result = _relaxed(
            -compiled.objective,
            constraints,
            Bounds(compiled.var_lower, compiled.var_upper),
        )
        elapsed = time.perf_counter() - start
        status = _STATUS.get(result.status, SolveStatus.ERROR)
        if not status.has_solution or result.x is None:
            return MilpSolution(
                status=status, runtime_seconds=elapsed, backend=self.name
            )
        x = np.asarray(result.x, dtype=float)
        return MilpSolution(
            status=status,
            objective=float(compiled.objective @ x)
            + compiled.objective_constant,
            values={var: float(x[var.index]) for var in compiled.variables},
            runtime_seconds=elapsed,
            backend=self.name,
        )


def screen_batch(
    compiled: Sequence[CompiledMilp],
) -> list[float | None]:
    """LP-relaxation upper bounds for many models in one solver call.

    The models are stacked into a block-diagonal LP; because the blocks
    share no variables or rows, the joint maximum is the sum of the
    per-block maxima and each block's slice of the joint solution is an
    optimal solution of that block. The returned bound per model is
    therefore a valid LP-relaxation optimum — a safe over-approximation
    of the block's MILP optimum.

    Returns one bound per input model, or ``None`` entries when the
    joint solve does not come back optimal (a failed screen is simply
    inconclusive; callers fall through to the exact path).
    """
    if not compiled:
        return []
    if len(compiled) == 1:
        solution = LpRelaxationBackend().solve_compiled(compiled[0])
        if solution.status is not SolveStatus.OPTIMAL:
            return [None]
        return [solution.objective]
    blocks = [csc_matrix(c.row_matrix) for c in compiled]
    matrix = block_diag(blocks, format="csc")
    row_lower = np.concatenate([c.row_lower for c in compiled])
    row_upper = np.concatenate([c.row_upper for c in compiled])
    var_lower = np.concatenate([c.var_lower for c in compiled])
    var_upper = np.concatenate([c.var_upper for c in compiled])
    objective = np.concatenate([c.objective for c in compiled])
    constraints = None
    if matrix.shape[0]:
        constraints = LinearConstraint(matrix, row_lower, row_upper)
    result = _relaxed(
        -objective, constraints, Bounds(var_lower, var_upper)
    )
    if _STATUS.get(result.status, SolveStatus.ERROR) is not SolveStatus.OPTIMAL:
        return [None] * len(compiled)
    if result.x is None:
        return [None] * len(compiled)
    x = np.asarray(result.x, dtype=float)
    bounds: list[float | None] = []
    offset = 0
    for c in compiled:
        x_block = x[offset : offset + c.num_vars]
        bounds.append(float(c.objective @ x_block) + c.objective_constant)
        offset += c.num_vars
    return bounds
