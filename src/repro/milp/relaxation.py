"""LP-relaxation backend.

Solves a model with all integrality constraints dropped. For a
*maximisation* the relaxed optimum upper-bounds the MILP optimum, so —
for the delay analyses in this package — the result is still a safe
(more pessimistic) delay bound at a fraction of the cost: one LP solve,
no branching. Used as the middle tier of the verdict pipeline
(closed form → LP → MILP) and as an ablation axis.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.milp.model import MilpBackend, MilpModel
from repro.milp.solution import MilpSolution, SolveStatus

_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.TIME_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


class LpRelaxationBackend(MilpBackend):
    """Solve the LP relaxation (integrality dropped) with HiGHS."""

    name = "lp_relaxation"

    def solve(self, model: MilpModel) -> MilpSolution:
        compiled = model.compile()
        constraints = None
        if compiled.num_rows:
            constraints = LinearConstraint(
                compiled.row_matrix, compiled.row_lower, compiled.row_upper
            )
        start = time.perf_counter()
        result = milp(
            c=-compiled.objective,
            constraints=constraints,
            bounds=Bounds(compiled.var_lower, compiled.var_upper),
            integrality=np.zeros(compiled.num_vars, dtype=int),
        )
        if result.status == 4:
            result = milp(
                c=-compiled.objective,
                constraints=constraints,
                bounds=Bounds(compiled.var_lower, compiled.var_upper),
                integrality=np.zeros(compiled.num_vars, dtype=int),
                options={"presolve": False},
            )
        elapsed = time.perf_counter() - start
        status = _STATUS.get(result.status, SolveStatus.ERROR)
        if not status.has_solution or result.x is None:
            return MilpSolution(
                status=status, runtime_seconds=elapsed, backend=self.name
            )
        x = np.asarray(result.x, dtype=float)
        return MilpSolution(
            status=status,
            objective=float(compiled.objective @ x)
            + compiled.objective_constant,
            values={var: float(x[var.index]) for var in compiled.variables},
            runtime_seconds=elapsed,
            backend=self.name,
        )
