"""Resilient solving: watchdog, bounded retries, safe-degradation chain.

A single hung or crashed HiGHS call must not abort a sweep of
thousands of solves. :class:`ResilientBackend` wraps any
:class:`~repro.milp.model.MilpBackend` and

1. enforces a wall-clock **watchdog** on every solve (the underlying
   solver's own time limit is cooperative; the watchdog is not);
2. **retries** transient failures — ``ERROR`` statuses,
   :class:`~repro.errors.SolverTimeoutError`,
   :class:`~repro.errors.BackendUnavailableError` — with bounded
   exponential backoff and perturbed solver options (presolve off,
   stretched time limit);
3. on exhaustion **degrades safely** through a fallback chain:
   exact solve → HiGHS with dual-bound early stop → LP relaxation →
   closed-form bound. For the delay *maximisations* of this package
   each step's result upper-bounds the previous step's optimum, so a
   degraded answer is more pessimistic, never optimistic. The level
   used is recorded in :attr:`MilpSolution.degradation`.

Definitive outcomes (``OPTIMAL``, ``INFEASIBLE``, ``UNBOUNDED``, or a
``TIME_LIMIT`` with an incumbent/dual bound) are never retried: they
are answers, not faults.

The closed-form rung needs task-set context a backend does not have,
so it is injected as a callable by the analysis layer (keeping
``milp`` free of ``analysis`` imports, per the layering rules).
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import BackendUnavailableError, SolverTimeoutError
from repro.faults import injection as faults
from repro.milp.highs import HighsBackend
from repro.milp.model import MilpBackend, MilpModel
from repro.milp.relaxation import LpRelaxationBackend
from repro.milp.solution import DegradationLevel, MilpSolution, SolveStatus
from repro.obs import events as obs

#: A fallback rung: the level it reports plus the backend that runs it.
FallbackStep = tuple[DegradationLevel, MilpBackend]


@dataclass(frozen=True)
class ResilienceConfig:
    """Analysis-facing knobs for :class:`ResilientBackend`.

    Attributes:
        watchdog_seconds: Hard wall-clock cap per solve attempt
            (``None`` disables the watchdog; the solver's own
            ``time_limit`` still applies).
        max_retries: Transient-failure retries of the primary backend
            before the fallback chain is entered.
        backoff_base: First backoff sleep in seconds; attempt ``k``
            sleeps ``backoff_base * backoff_factor**k``, capped at
            ``backoff_max`` and stretched by a deterministic jitter.
        backoff_factor: Exponential backoff multiplier.
        backoff_max: Hard cap on a single backoff sleep; without it the
            exponential schedule grows without bound across rungs.
        backoff_jitter: Jitter fraction in ``[0, 1]``: each sleep is
            stretched by up to this fraction, derived deterministically
            from the model name and attempt index (no RNG — worker
            results must not depend on entropy), so concurrent workers
            retrying the same transient fault desynchronise while every
            run's schedule stays reproducible.
        fallback_time_limit: Solver time limit of the dual-bound rung.
        max_degradation: Deepest rung the chain may reach; e.g.
            :attr:`DegradationLevel.LP_RELAXATION` forbids the
            closed-form rung even when a bound callable is available.
    """

    watchdog_seconds: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    backoff_jitter: float = 0.1
    fallback_time_limit: float = 5.0
    max_degradation: DegradationLevel = DegradationLevel.CLOSED_FORM


class ResilientBackend(MilpBackend):
    """Watchdog + retry + safe-degradation wrapper around a backend.

    Args:
        primary: The exact backend (HiGHS by default).
        watchdog_seconds: See :class:`ResilienceConfig`.
        max_retries: See :class:`ResilienceConfig`.
        backoff_base: See :class:`ResilienceConfig`.
        backoff_factor: See :class:`ResilienceConfig`.
        fallback_time_limit: See :class:`ResilienceConfig`.
        max_degradation: See :class:`ResilienceConfig`.
        fallbacks: Explicit fallback chain; defaults to
            dual-bound HiGHS then LP relaxation, truncated at
            ``max_degradation``.
        closed_form_objective: Last-resort callable returning a safe
            objective value (an upper bound for maximisation) when
            every solver rung failed. Injected by the analysis layer,
            which knows the task-set context.
        sleep: Injectable sleep (tests pass a recorder).
    """

    name = "resilient"

    def __init__(
        self,
        primary: MilpBackend | None = None,
        *,
        watchdog_seconds: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max: float = 1.0,
        backoff_jitter: float = 0.1,
        fallback_time_limit: float = 5.0,
        max_degradation: DegradationLevel = DegradationLevel.CLOSED_FORM,
        fallbacks: Sequence[FallbackStep] | None = None,
        closed_form_objective: Callable[[], float] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.primary = primary if primary is not None else HighsBackend()
        self.watchdog_seconds = watchdog_seconds
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.backoff_jitter = backoff_jitter
        self.fallback_time_limit = fallback_time_limit
        self.max_degradation = max_degradation
        self.closed_form_objective = closed_form_objective
        self._sleep = sleep
        if fallbacks is None:
            fallbacks = self._default_fallbacks()
        self.fallbacks = tuple(
            (level, backend)
            for level, backend in fallbacks
            if level <= max_degradation
        )

    @classmethod
    def from_config(
        cls,
        primary: MilpBackend,
        config: ResilienceConfig,
        closed_form_objective: Callable[[], float] | None = None,
    ) -> "ResilientBackend":
        """Build a wrapper from the analysis-facing config."""
        return cls(
            primary,
            watchdog_seconds=config.watchdog_seconds,
            max_retries=config.max_retries,
            backoff_base=config.backoff_base,
            backoff_factor=config.backoff_factor,
            backoff_max=config.backoff_max,
            backoff_jitter=config.backoff_jitter,
            fallback_time_limit=config.fallback_time_limit,
            max_degradation=config.max_degradation,
            closed_form_objective=closed_form_objective,
        )

    # ------------------------------------------------------------------
    def _default_fallbacks(self) -> list[FallbackStep]:
        gap = 0.05
        if isinstance(self.primary, HighsBackend):
            gap = max(gap, self.primary.mip_rel_gap)
        return [
            (
                DegradationLevel.DUAL_BOUND,
                HighsBackend(
                    time_limit=self.fallback_time_limit,
                    mip_rel_gap=gap,
                    use_dual_bound=True,
                ),
            ),
            (DegradationLevel.LP_RELAXATION, LpRelaxationBackend()),
        ]

    def _perturbed(self, attempt: int) -> MilpBackend:
        """A retry variant of the primary with perturbed options.

        HiGHS' rare presolve/numerics failures are tied to the option
        set, not the model, so retrying with presolve off and a
        stretched time limit gives a genuinely different code path.
        """
        if not isinstance(self.primary, HighsBackend):
            return self.primary
        time_limit = self.primary.time_limit
        if time_limit is not None:
            time_limit = time_limit * (1 + attempt)
        return HighsBackend(
            time_limit=time_limit,
            mip_rel_gap=self.primary.mip_rel_gap,
            use_dual_bound=self.primary.use_dual_bound,
            extra_options={**self.primary.extra_options, "presolve": False},
        )

    def backoff_delay(self, attempt: int, model_name: str = "") -> float:
        """Backoff sleep before retry ``attempt + 1``: capped + jittered.

        ``min(backoff_base * backoff_factor**attempt, backoff_max)``
        stretched by a jitter fraction derived from a hash of
        ``(model_name, attempt)`` — deterministic (solver retries run
        inside sweep workers, where entropy is banned) yet spread
        across models so simultaneous retries decorrelate.
        """
        delay = min(
            self.backoff_base * self.backoff_factor**attempt,
            self.backoff_max,
        )
        if self.backoff_jitter > 0.0:
            digest = hashlib.sha256(
                f"{model_name}:{attempt}".encode()
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
            delay *= 1.0 + self.backoff_jitter * fraction
        return delay

    @staticmethod
    def _unusable(solution: MilpSolution) -> str | None:
        """Why a returned solution is garbage, or ``None`` if usable.

        A backend that crashes is easy; a backend that *lies* —
        reporting OPTIMAL with a NaN/infinite objective — would
        silently poison the fixpoint. Such solutions are treated
        exactly like ``ERROR`` statuses: retried, then degraded.
        """
        if solution.status is SolveStatus.ERROR:
            return "status_error"
        if solution.status.has_solution and not math.isfinite(
            solution.objective
        ):
            return "nonfinite_objective"
        return None

    def _guarded(self, backend: MilpBackend, model: MilpModel) -> MilpSolution:
        """One solve attempt under the wall-clock watchdog.

        The solve runs in a worker thread (SciPy releases the GIL
        inside HiGHS); on expiry the thread is abandoned — it cannot be
        killed — and the attempt is reported as a timeout.
        """
        spec = faults.fire("solver.fault", backend=backend.name)
        if spec is not None:
            if spec.mode == "crash":
                raise BackendUnavailableError(
                    f"injected solver crash on model {model.name!r}"
                )
            if spec.mode == "timeout":
                raise SolverTimeoutError(
                    f"injected solver timeout on model {model.name!r}"
                )
            return MilpSolution(
                status=SolveStatus.OPTIMAL,
                objective=float("nan"),
                backend="injected-garbage",
            )
        if self.watchdog_seconds is None:
            return backend.solve(model)
        executor = ThreadPoolExecutor(max_workers=1)
        try:
            future = executor.submit(backend.solve, model)
            try:
                return future.result(timeout=self.watchdog_seconds)
            except _FutureTimeout:
                obs.emit(
                    "resilience.watchdog",
                    model=model.name,
                    backend=backend.name,
                    limit=self.watchdog_seconds,
                )
                raise SolverTimeoutError(
                    f"watchdog expired after {self.watchdog_seconds}s on "
                    f"model {model.name!r} (backend {backend.name!r})"
                ) from None
        finally:
            executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _with_retry_details(
        self, solution: MilpSolution, backoffs: list[float]
    ) -> MilpSolution:
        """Attach the realised retry/backoff schedule to a solution."""
        if not backoffs:
            return solution
        return dataclasses.replace(
            solution,
            details={
                **solution.details,
                "retries": len(backoffs),
                "backoff_schedule": tuple(backoffs),
            },
        )

    def solve(self, model: MilpModel) -> MilpSolution:
        history: list[str] = []
        backoffs: list[float] = []

        for attempt in range(self.max_retries + 1):
            backend = self.primary if attempt == 0 else self._perturbed(attempt)
            try:
                solution = self._guarded(backend, model)
            except (SolverTimeoutError, BackendUnavailableError) as exc:
                history.append(f"attempt {attempt}: {type(exc).__name__}: {exc}")
                obs.emit(
                    "resilience.retry",
                    model=model.name,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
            else:
                reason = self._unusable(solution)
                if reason is None:
                    return self._with_retry_details(solution, backoffs)
                history.append(
                    f"attempt {attempt}: {reason} from {backend.name!r}"
                )
                obs.emit(
                    "resilience.retry",
                    model=model.name,
                    attempt=attempt,
                    error=reason,
                )
            if attempt < self.max_retries:
                delay = self.backoff_delay(attempt, model.name)
                backoffs.append(delay)
                self._sleep(delay)

        deepest = DegradationLevel.EXACT
        for level, backend in self.fallbacks:
            deepest = level
            try:
                solution = self._guarded(backend, model)
            except (SolverTimeoutError, BackendUnavailableError) as exc:
                history.append(f"{level.name}: {type(exc).__name__}: {exc}")
                continue
            reason = self._unusable(solution)
            if reason is not None:
                history.append(f"{level.name}: {reason} from {backend.name!r}")
                continue
            obs.emit(
                "resilience.fallback", model=model.name, level=level.name
            )
            return self._with_retry_details(
                dataclasses.replace(solution, degradation=level), backoffs
            )

        if (
            self.closed_form_objective is not None
            and self.max_degradation >= DegradationLevel.CLOSED_FORM
        ):
            obs.emit("resilience.closed_form", model=model.name)
            return self._with_retry_details(
                MilpSolution(
                    status=SolveStatus.TIME_LIMIT,
                    objective=float(self.closed_form_objective()),
                    backend="closed_form",
                    degradation=DegradationLevel.CLOSED_FORM,
                ),
                backoffs,
            )

        error = BackendUnavailableError(
            f"all resilience levels exhausted on model {model.name!r}: "
            + "; ".join(history)
        )
        error.degradation = deepest
        raise error
