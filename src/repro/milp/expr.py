"""Linear expressions and constraints for the MILP modelling layer.

The design mirrors the small core of modelling libraries like PuLP:
:class:`Var` atoms combine through Python arithmetic into
:class:`LinExpr` objects, and comparison operators build
:class:`Constraint` rows. Everything is immutable-by-convention; the
model owns variable registration and index assignment.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from repro.errors import SolverError

Number = Union[int, float]
ExprLike = Union["Var", "LinExpr", Number]


class Var:
    """A decision variable.

    Attributes:
        name: Unique name inside its model.
        lower: Lower bound (may be ``-inf``).
        upper: Upper bound (may be ``+inf``).
        integer: Whether the variable is integrality-constrained.
        index: Column index assigned by the owning model.
    """

    __slots__ = ("name", "lower", "upper", "integer", "index")

    def __init__(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        integer: bool = False,
        index: int = -1,
    ) -> None:
        if lower > upper:
            raise SolverError(f"{name}: lower bound {lower} > upper bound {upper}")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.integer = bool(integer)
        self.index = index

    @property
    def is_binary(self) -> bool:
        return self.integer and self.lower == 0.0 and self.upper == 1.0

    # -- arithmetic → LinExpr ------------------------------------------
    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: ExprLike) -> "LinExpr":
        return self._as_expr() + other

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self._as_expr() + other

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return (-1.0) * self._as_expr() + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self._as_expr() * other

    def __rmul__(self, other: Number) -> "LinExpr":
        return self._as_expr() * other

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    # -- comparisons → Constraint --------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return self._as_expr() <= other

    def __ge__(self, other: ExprLike) -> "Constraint":
        return self._as_expr() >= other

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented  # type: ignore[return-value]

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "bin" if self.is_binary else ("int" if self.integer else "cont")
        return f"Var({self.name!r}, {kind}, [{self.lower}, {self.upper}])"


class LinExpr:
    """An affine expression ``sum coef_i * var_i + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self, terms: Mapping[Var, float] | None = None, constant: float = 0.0
    ) -> None:
        self.terms: dict[Var, float] = dict(terms) if terms else {}
        self.constant = float(constant)

    @staticmethod
    def from_(value: ExprLike) -> "LinExpr":
        """Coerce a var, expression, or number into a LinExpr."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return LinExpr({value: 1.0}, 0.0)
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise SolverError(f"cannot build a linear expression from {value!r}")

    @staticmethod
    def total(items: Iterable[ExprLike]) -> "LinExpr":
        """Sum an iterable of expression-likes (like ``lpSum``)."""
        acc = LinExpr()
        for item in items:
            acc = acc + item
        return acc

    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: ExprLike) -> "LinExpr":
        rhs = LinExpr.from_(other)
        out = self.copy()
        for var, coef in rhs.terms.items():
            out.terms[var] = out.terms.get(var, 0.0) + coef
        out.constant += rhs.constant
        return out

    def __radd__(self, other: ExprLike) -> "LinExpr":
        return self + other

    def __sub__(self, other: ExprLike) -> "LinExpr":
        return self + LinExpr.from_(other) * -1.0

    def __rsub__(self, other: ExprLike) -> "LinExpr":
        return LinExpr.from_(other) + self * -1.0

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            raise SolverError("expressions can only be scaled by numbers")
        return LinExpr(
            {v: c * float(factor) for v, c in self.terms.items()},
            self.constant * float(factor),
        )

    def __rmul__(self, factor: Number) -> "LinExpr":
        return self * factor

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons → Constraint --------------------------------------
    def __le__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - LinExpr.from_(other), "<=")

    def __ge__(self, other: ExprLike) -> "Constraint":
        return Constraint(self - LinExpr.from_(other), ">=")

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return Constraint(self - LinExpr.from_(other), "==")
        return NotImplemented  # type: ignore[return-value]

    def __hash__(self) -> int:
        return id(self)

    def value(self, assignment: Mapping[Var, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(
            coef * assignment[var] for var, coef in self.terms.items()
        )

    def __repr__(self) -> str:
        parts = [f"{c:+g}*{v.name}" for v, c in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalised form."""

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in ("<=", ">=", "=="):
            raise SolverError(f"invalid constraint sense {sense!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    def named(self, name: str) -> "Constraint":
        """Return this constraint with a diagnostic name attached."""
        self.name = name
        return self

    def bounds(self) -> tuple[float, float]:
        """Row bounds ``(lb, ub)`` for ``sum coef*var`` (constant moved)."""
        rhs = -self.expr.constant
        if self.sense == "<=":
            return (-float("inf"), rhs)
        if self.sense == ">=":
            return (rhs, float("inf"))
        return (rhs, rhs)

    def satisfied(self, assignment: Mapping[Var, float], tol: float = 1e-6) -> bool:
        """Check the constraint under an assignment, within tolerance."""
        lhs = self.expr.value(assignment)
        if self.sense == "<=":
            return lhs <= tol
        if self.sense == ">=":
            return lhs >= -tol
        return abs(lhs) <= tol

    def __repr__(self) -> str:
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.expr!r} {self.sense} 0"
