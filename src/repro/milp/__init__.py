"""A small mixed-integer linear programming modelling layer.

The paper solves its worst-case-delay formulation with IBM CPLEX; this
package provides the equivalent building blocks on software available
offline: a modelling API (:class:`MilpModel`, :class:`Var`,
:class:`LinExpr`) and two exact backends — SciPy's HiGHS wrapper
(:class:`HighsBackend`) and a pure-Python branch-and-bound over LP
relaxations (:class:`BranchBoundBackend`) used to cross-validate HiGHS
on small instances.
"""

from repro.milp.audit import AuditIssue, AuditReport, audit_model
from repro.milp.expr import Constraint, LinExpr, Var
from repro.milp.model import MilpModel
from repro.milp.solution import DegradationLevel, MilpSolution, SolveStatus
from repro.milp.highs import HighsBackend
from repro.milp.branch_bound import BranchBoundBackend
from repro.milp.relaxation import LpRelaxationBackend
from repro.milp.resilient import ResilienceConfig, ResilientBackend

__all__ = [
    "AuditIssue",
    "AuditReport",
    "audit_model",
    "DegradationLevel",
    "ResilienceConfig",
    "ResilientBackend",
    "LpRelaxationBackend",
    "Var",
    "LinExpr",
    "Constraint",
    "MilpModel",
    "MilpSolution",
    "SolveStatus",
    "HighsBackend",
    "BranchBoundBackend",
]
