"""Solver-independent solution and status types."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.milp.expr import Var


class DegradationLevel(enum.IntEnum):
    """How far a resilient solve degraded from the exact MILP.

    Levels are ordered from exact to most conservative; every level is
    safe-side for the delay maximisations in this package (each step's
    optimum upper-bounds the previous step's), so a higher level trades
    tightness — never soundness — for availability.
    """

    EXACT = 0
    DUAL_BOUND = 1
    LP_RELAXATION = 2
    CLOSED_FORM = 3


class SolveStatus(enum.Enum):
    """Outcome of a MILP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether variable values/objective are available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)


@dataclass(frozen=True)
class MilpSolution:
    """Result of solving a :class:`repro.milp.MilpModel`.

    Attributes:
        status: Solve outcome.
        objective: Objective value; meaningful when ``status.has_solution``.
        values: Assignment of each model variable (by :class:`Var`).
        runtime_seconds: Wall-clock time spent in the backend.
        backend: Name of the backend that produced the solution.
        node_count: Branch-and-bound nodes explored (if reported).
        degradation: Which rung of the safe-degradation ladder produced
            this solution (:attr:`DegradationLevel.EXACT` unless a
            :class:`repro.milp.ResilientBackend` had to fall back).
        details: Free-form diagnostics attached by wrapping backends —
            e.g. the :class:`repro.milp.ResilientBackend` records its
            retry count and the capped/jittered backoff schedule here
            (keys ``retries``, ``backoff_schedule``) next to the
            ``degradation`` level they led to.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Mapping[Var, float] = field(default_factory=dict)
    runtime_seconds: float = 0.0
    backend: str = ""
    node_count: int | None = None
    degradation: DegradationLevel = DegradationLevel.EXACT
    details: Mapping[str, object] = field(default_factory=dict)

    def __getitem__(self, var: Var) -> float:
        return self.values[var]

    def value_by_name(self, name: str) -> float:
        """Look a variable's value up by its name."""
        for var, val in self.values.items():
            if var.name == name:
                return val
        raise KeyError(name)

    def binaries_set(self, tol: float = 1e-6) -> tuple[str, ...]:
        """Names of integer variables whose value rounds to 1.

        Useful when inspecting which schedule structure the delay
        maximisation selected.
        """
        return tuple(
            var.name
            for var, val in self.values.items()
            if var.integer and abs(val - 1.0) <= tol
        )
