"""HiGHS backend via :func:`scipy.optimize.milp`.

This is the primary, exact backend. SciPy embeds the HiGHS solver,
which plays the role IBM CPLEX plays in the paper's experiments.
"""

from __future__ import annotations

import time
import warnings
from typing import Mapping

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.errors import BackendUnavailableError, SolverTimeoutError
from repro.milp.model import MilpBackend, MilpModel
from repro.milp.solution import MilpSolution, SolveStatus
from repro.obs import events as obs

# scipy.optimize.milp status codes (see its docs).
_SCIPY_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.TIME_LIMIT,  # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}

# Option perturbations tried, in order, when HiGHS reports status 4
# (solver error). Some HiGHS builds fail in presolve on models that are
# perfectly solvable; others need a tighter integer-feasibility
# tolerance on degenerate models (e.g. duplicate rows from l=u memory
# demands). ``mip_feasibility_tolerance`` is not in scipy's known-option
# list and is passed to HiGHS verbatim (scipy warns about that; the
# warning is suppressed below because verbatim is exactly the intent).
_STATUS4_RETRY_LADDER: tuple[Mapping[str, object], ...] = (
    {"presolve": False},
    {"mip_feasibility_tolerance": 1e-7},
    {"presolve": False, "mip_feasibility_tolerance": 1e-7},
)


class HighsBackend(MilpBackend):
    """Solve models with HiGHS through SciPy.

    Attributes:
        time_limit: Wall-clock cap in seconds (``None`` = unlimited).
        mip_rel_gap: Relative MIP gap at which HiGHS may stop. The
            delay bound stays safe for maximisation only when the gap
            is applied to the *dual* bound, so a nonzero gap should be
            paired with :attr:`use_dual_bound`.
        use_dual_bound: Report HiGHS' dual (upper) bound instead of the
            incumbent objective. For a maximisation whose result must
            upper-bound reality (our delay analyses), the dual bound is
            the safe choice whenever the solve may stop early.
        extra_options: Additional raw HiGHS options merged into every
            solve (e.g. ``{"presolve": False}``); used by the resilient
            wrapper to perturb retries.
    """

    name = "highs"

    def __init__(
        self,
        time_limit: float | None = None,
        mip_rel_gap: float = 0.0,
        use_dual_bound: bool = False,
        extra_options: Mapping[str, object] | None = None,
    ) -> None:
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self.use_dual_bound = use_dual_bound
        self.extra_options = dict(extra_options) if extra_options else {}

    def solve(self, model: MilpModel) -> MilpSolution:
        compiled = model.compile()
        # scipy minimises; our canonical sense is maximise.
        c = -compiled.objective
        constraints = None
        if compiled.num_rows:
            constraints = LinearConstraint(
                compiled.row_matrix, compiled.row_lower, compiled.row_upper
            )
        bounds = Bounds(compiled.var_lower, compiled.var_upper)
        options: dict[str, object] = {}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit
        if self.mip_rel_gap:
            options["mip_rel_gap"] = self.mip_rel_gap
        options.update(self.extra_options)

        start = time.perf_counter()
        result = milp(
            c=c,
            constraints=constraints,
            bounds=bounds,
            integrality=compiled.integrality,
            options=options or None,
        )
        for perturbation in _STATUS4_RETRY_LADDER:
            if result.status != 4:
                break
            obs.emit(
                "highs.retry",
                model=model.name,
                options=dict(perturbation),
            )
            with warnings.catch_warnings():
                warnings.filterwarnings(
                    "ignore", message="Unrecognized options"
                )
                result = milp(
                    c=c,
                    constraints=constraints,
                    bounds=bounds,
                    integrality=compiled.integrality,
                    options={**options, **perturbation},
                )
        elapsed = time.perf_counter() - start

        stats = (
            f"rows={compiled.num_rows}, vars={compiled.num_vars}, "
            f"elapsed={elapsed:.2f}s"
        )
        status = _SCIPY_STATUS.get(result.status, SolveStatus.ERROR)
        obs.emit(
            "highs.solve",
            dur=elapsed,
            model=model.name,
            scipy_status=int(result.status),
            rows=compiled.num_rows,
            vars=compiled.num_vars,
        )
        if status.has_solution and result.x is None:
            # Limit hit before any incumbent was found: there is no
            # value to report, not even an unsafe one.
            raise SolverTimeoutError(
                f"HiGHS hit its limit with no incumbent on model "
                f"{model.name!r} ({stats})"
            )
        if status is SolveStatus.ERROR:
            raise BackendUnavailableError(
                f"HiGHS failed (scipy status {result.status}) on model "
                f"{model.name!r}, {len(_STATUS4_RETRY_LADDER)} option "
                f"retries included ({stats})"
            )
        if not status.has_solution:
            return MilpSolution(
                status=status, runtime_seconds=elapsed, backend=self.name
            )

        x = np.asarray(result.x, dtype=float)
        # Snap integer variables to avoid 0.9999999 artefacts downstream.
        int_mask = compiled.integrality.astype(bool)
        x[int_mask] = np.round(x[int_mask])
        objective = float(compiled.objective @ x) + compiled.objective_constant
        if (
            self.use_dual_bound
            and status is SolveStatus.TIME_LIMIT
            and result.mip_dual_bound is not None
            and np.isfinite(result.mip_dual_bound)
        ):
            # Early stop: report the safe side. scipy's dual bound is
            # for the minimisation of -obj, and is only meaningful when
            # the solve actually stopped early (at optimality the
            # incumbent is exact and some HiGHS builds report stale
            # dual bounds).
            objective = max(
                objective,
                float(-result.mip_dual_bound) + compiled.objective_constant,
            )
        values = {var: float(x[var.index]) for var in compiled.variables}
        return MilpSolution(
            status=status,
            objective=objective,
            values=values,
            runtime_seconds=elapsed,
            backend=self.name,
            node_count=getattr(result, "mip_node_count", None),
        )
