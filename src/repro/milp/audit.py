"""Static soundness auditor for MILP models (pre-solve gate).

The delay bound of Theorem 1 is only as trustworthy as the model handed
to the solver: a missing interference row, an inverted bound, or a
runaway big-M silently turns "safe upper bound" into garbage that still
*looks* like a number. This module checks model structure mechanically,
before any solve:

* **Structural audit** (:func:`audit_model`) — defects any MILP can
  have: inverted/NaN variable bounds, non-finite coefficients, free
  variables that make the objective unbounded, vacuous or trivially
  infeasible empty rows, duplicate rows, coefficient-conditioning
  hazards (big-M magnitude ratios), and unused variables.
* **Constraint-family census** (:func:`audit_delay_milp`) — specific to
  the Theorem 1 / Corollary 1 formulation: recounts, from the paper's
  sparsity rules (Constraints 3/4/14) and ``N_i(t)`` alone, how many
  rows each constraint family (C5..C13b, the cancellation budget) must
  contribute, and compares against the rows actually present in the
  built model. The recount is an independent implementation — it never
  touches :mod:`repro.analysis.proposed.formulation`'s variable tables
  — so builder drift and census drift cannot cancel out.

Wiring: ``MilpModel.solve(..., audit=True)`` (or the class-wide
``MilpModel.audit_before_solve`` toggle) runs the structural audit as a
pre-solve gate; ``repro audit <taskset>`` runs the full audit including
the census; the formulation tests audit every model they build through
an autouse fixture.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.milp.model import MilpModel

if TYPE_CHECKING:  # circular at runtime: formulation builds on milp
    from repro.analysis.proposed.formulation import DelayMilp
    from repro.model.task import Task
    from repro.model.taskset import TaskSet

ERROR = "error"
WARNING = "warning"

#: Largest-to-smallest nonzero |coefficient| ratio within one row above
#: which LP pivoting may lose the small coefficient to rounding.
CONDITIONING_RATIO = 1e8

#: Absolute coefficient magnitude above which any big-M is suspect
#: (the formulation's big-Ms are bounded by task phase durations).
BIG_M_CEILING = 1e9


@dataclass(frozen=True)
class AuditIssue:
    """One defect found by the auditor.

    Attributes:
        severity: ``"error"`` (solving would be unsound or undefined)
            or ``"warning"`` (suspicious but not provably wrong).
        code: Stable machine-readable defect class.
        message: Human-readable description.
        rows: Names of the constraint rows involved, when applicable.
    """

    severity: str
    code: str
    message: str
    rows: tuple[str, ...] = ()

    def render(self) -> str:
        where = f" [{', '.join(self.rows)}]" if self.rows else ""
        return f"{self.severity}: {self.code}: {self.message}{where}"


@dataclass(frozen=True)
class AuditReport:
    """The auditor's verdict on one model."""

    model_name: str
    issues: tuple[AuditIssue, ...]
    census: Mapping[str, int] = field(default_factory=dict)

    @property
    def errors(self) -> tuple[AuditIssue, ...]:
        return tuple(i for i in self.issues if i.severity == ERROR)

    @property
    def warnings(self) -> tuple[AuditIssue, ...]:
        return tuple(i for i in self.issues if i.severity == WARNING)

    @property
    def ok(self) -> bool:
        """Whether the model is safe to hand to a solver."""
        return not self.errors

    def render(self) -> str:
        lines = [
            f"audit of {self.model_name!r}: "
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        ]
        lines.extend("  " + issue.render() for issue in self.issues)
        if self.census:
            families = ", ".join(
                f"{fam}={count}" for fam, count in sorted(self.census.items())
            )
            lines.append(f"  constraint families: {families}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# structural audit
# ----------------------------------------------------------------------
def _nonzero_terms(constraint) -> dict:
    return {v: c for v, c in constraint.expr.terms.items() if c != 0.0}


def audit_model(model: MilpModel) -> AuditReport:
    """Report the structural defects of a model, without solving it."""
    issues: list[AuditIssue] = []
    constrained: set[int] = set()
    row_keys: dict[tuple, list[str]] = {}

    for var in model.variables:
        if math.isnan(var.lower) or math.isnan(var.upper):
            issues.append(AuditIssue(
                ERROR, "nan-bound",
                f"variable {var.name!r} has a NaN bound "
                f"[{var.lower}, {var.upper}]",
            ))
        elif var.lower > var.upper:
            issues.append(AuditIssue(
                ERROR, "inverted-bounds",
                f"variable {var.name!r} has lower {var.lower} > upper "
                f"{var.upper}: every model containing it is infeasible",
            ))

    for con in model.constraints:
        terms = _nonzero_terms(con)
        for var, coef in con.expr.terms.items():
            if not math.isfinite(coef):
                issues.append(AuditIssue(
                    ERROR, "non-finite-coefficient",
                    f"coefficient {coef!r} on {var.name!r}",
                    rows=(con.name,),
                ))
        if not math.isfinite(con.expr.constant):
            issues.append(AuditIssue(
                ERROR, "non-finite-constant",
                f"constraint constant is {con.expr.constant!r}",
                rows=(con.name,),
            ))
        elif not terms:
            # `constant (sense) 0` with no variables: either vacuous or
            # a contradiction baked into the model. Zero-coefficient
            # variables may still sit in the expression; bind them so
            # evaluation cannot KeyError.
            zeros = {v: 0.0 for v in con.expr.terms}
            if con.satisfied(zeros):
                issues.append(AuditIssue(
                    WARNING, "vacuous-constraint",
                    "no nonzero coefficients; the row constrains nothing",
                    rows=(con.name,),
                ))
            else:
                issues.append(AuditIssue(
                    ERROR, "trivially-infeasible",
                    f"no nonzero coefficients but requires "
                    f"{con.expr.constant:g} {con.sense} 0",
                    rows=(con.name,),
                ))
        else:
            constrained.update(v.index for v in terms)
            magnitudes = [abs(c) for c in terms.values()]
            largest, smallest = max(magnitudes), min(magnitudes)
            if largest > BIG_M_CEILING:
                issues.append(AuditIssue(
                    WARNING, "big-m-magnitude",
                    f"coefficient magnitude {largest:g} exceeds "
                    f"{BIG_M_CEILING:g}; solver feasibility tolerances "
                    "make such big-Ms leaky",
                    rows=(con.name,),
                ))
            elif largest / smallest > CONDITIONING_RATIO:
                issues.append(AuditIssue(
                    WARNING, "ill-conditioned-row",
                    f"coefficient ratio {largest:g}/{smallest:g} exceeds "
                    f"{CONDITIONING_RATIO:g}",
                    rows=(con.name,),
                ))
            key = (
                con.sense,
                con.expr.constant,
                tuple(sorted((v.index, c) for v, c in terms.items())),
            )
            row_keys.setdefault(key, []).append(con.name)

    for names in row_keys.values():
        if len(names) > 1:
            issues.append(AuditIssue(
                WARNING, "duplicate-row",
                "identical coefficient rows (one is redundant, or a "
                "family was built twice)",
                rows=tuple(names),
            ))

    objective = model.objective
    for var, coef in objective.terms.items():
        if not math.isfinite(coef):
            issues.append(AuditIssue(
                ERROR, "non-finite-coefficient",
                f"objective coefficient {coef!r} on {var.name!r}",
            ))
    if not math.isfinite(objective.constant):
        issues.append(AuditIssue(
            ERROR, "non-finite-constant",
            f"objective constant is {objective.constant!r}",
        ))

    sign = 1.0 if model.is_maximization else -1.0
    for var, coef in objective.terms.items():
        if coef == 0.0 or var.index in constrained:
            continue
        improving_bound = var.upper if sign * coef > 0 else var.lower
        if math.isinf(improving_bound):
            issues.append(AuditIssue(
                ERROR, "unbounded-objective",
                f"variable {var.name!r} improves the objective, has an "
                "infinite bound in the improving direction, and appears "
                "in no constraint: the optimum is unbounded",
            ))
        else:
            issues.append(AuditIssue(
                WARNING, "unconstrained-objective-var",
                f"objective variable {var.name!r} appears in no "
                "constraint; only its bounds cap it",
            ))

    for var in model.variables:
        if var.index not in constrained and var not in objective.terms:
            issues.append(AuditIssue(
                WARNING, "unused-variable",
                f"variable {var.name!r} appears in no constraint and "
                "not in the objective",
            ))

    return AuditReport(
        model_name=model.name,
        issues=tuple(issues),
        census=constraint_census(model),
    )


def constraint_census(model: MilpModel) -> dict[str, int]:
    """Count constraints per family (the name prefix before ``[``)."""
    census: Counter[str] = Counter()
    for con in model.constraints:
        family = con.name.split("[", 1)[0] if con.name else "<unnamed>"
        census[family] += 1
    return dict(census)


# ----------------------------------------------------------------------
# constraint-family census for the Theorem 1 / Corollary 1 formulation
# ----------------------------------------------------------------------
def expected_delay_census(
    taskset: "TaskSet", task: "Task", mode, num_intervals: int
) -> dict[str, int]:
    """Expected per-family row counts of one delay MILP.

    Recomputed from the paper's sparsity rules alone, as a function of
    ``N_i(t)`` and the higher/lower-priority split — deliberately *not*
    by querying the builder's variable tables, so a builder bug cannot
    hide from the census it is checked against:

    * executions ``E^k_j`` live in ``I_0..I_{N-2}``; lower-priority
      ones only in the first two intervals (Constraint 3), or only
      ``I_0`` under LS case (a) (Constraint 14);
    * urgent executions ``LE^k_j`` exist exactly where an LS task has
      an ``E`` variable (and never in WASLY mode);
    * cancelled copy-ins ``CL^k_j`` exist in ``I_0..I_{N-3}`` where a
      higher-priority LS release can cancel the victim (Constraint 10's
      sum over Gamma), lower-priority victims only in ``I_0``.

    Families with an expected count of zero are omitted.
    """
    from repro.analysis.proposed.formulation import AnalysisMode

    n = num_intervals
    others = [j for j in taskset if j.name != task.name]

    if mode is AnalysisMode.LS_CASE_B:
        expected = {"C9": 1, "C11": 1, "C13a": 2, "C13b": 2}
        if others:
            expected["C5"] = 1
        return expected

    lp_names = {j.name for j in taskset.lp(task)}
    machinery = mode is not AnalysisMode.WASLY
    span = 1 if mode is AnalysisMode.LS_CASE_A else 2

    e_cells: set[tuple[int, str]] = set()
    le_cells: set[tuple[int, str]] = set()
    cl_cells: set[tuple[int, str]] = set()
    for j in others:
        limit = min(span, n - 1) if j.name in lp_names else n - 1
        for k in range(limit):
            e_cells.add((k, j.name))
            if machinery and j.latency_sensitive:
                le_cells.add((k, j.name))

    def has_canceller(victim: "Task") -> bool:
        if not machinery:
            return False
        if any(
            s.latency_sensitive
            and s.priority < victim.priority
            and s.name not in (task.name, victim.name)
            for s in taskset
        ):
            return True
        return (
            mode is AnalysisMode.LS_CASE_A
            and task.priority < victim.priority
        )

    for j in taskset:
        if not has_canceller(j):
            continue
        victim_span = 1 if j.name in lp_names else n - 2
        for k in range(min(victim_span, n - 2)):
            cl_cells.add((k, j.name))

    def row_nonempty(cells: set[tuple[int, str]], k: int) -> bool:
        return any(kk == k for kk, _ in cells)

    expected = {
        "C5": sum(
            1
            for k in range(n - 1)
            if row_nonempty(e_cells, k) or row_nonempty(le_cells, k)
        ),
        "C6": sum(
            1
            for k in range(n - 2)
            if row_nonempty(e_cells, k + 1) or row_nonempty(cl_cells, k)
        ),
        "C7": sum(
            1
            for j in others
            if any(name == j.name for _, name in e_cells | le_cells)
        ),
        "C8": sum(
            1
            for j in others
            if machinery and j.latency_sensitive
            for k in range(n - 2)
            if (k + 1, j.name) in le_cells
        ),
        "CLbudget": 1 if cl_cells else 0,
        "C9": n - 1,
        "C10": n - 2,
        "C11": n - 1,
        "C13a": n,
        "C13b": n,
    }
    return {fam: count for fam, count in expected.items() if count}


def audit_delay_milp(
    built: "DelayMilp", taskset: "TaskSet", task: "Task"
) -> AuditReport:
    """Full audit of one built delay MILP: structure plus census."""
    report = audit_model(built.model)
    issues = list(report.issues)
    expected = expected_delay_census(
        taskset, task, built.mode, built.num_intervals
    )
    actual = report.census
    for family in sorted(set(expected) | set(actual)):
        want, have = expected.get(family, 0), actual.get(family, 0)
        if want != have:
            issues.append(AuditIssue(
                ERROR, "census-mismatch",
                f"constraint family {family}: expected {want} row(s) for "
                f"N={built.num_intervals} ({built.mode.value}), found {have}",
            ))
    return AuditReport(
        model_name=report.model_name,
        issues=tuple(issues),
        census=actual,
    )
