"""The MILP model container and its matrix compilation.

:class:`MilpModel` registers variables and constraints built with
:mod:`repro.milp.expr` and compiles them into the dense/NumPy matrix
form that both backends consume. Maximisation is canonical (the
analyses maximise delay); minimisation is expressed by negating the
objective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Iterable, Sequence

import numpy as np

from repro.errors import SolverError
from repro.milp.expr import Constraint, ExprLike, LinExpr, Var
from repro.milp.solution import MilpSolution


@dataclass(frozen=True)
class CompiledMilp:
    """Matrix form of a model: maximise ``c @ x + c0`` s.t. rows/bounds."""

    objective: np.ndarray
    objective_constant: float
    row_matrix: np.ndarray
    row_lower: np.ndarray
    row_upper: np.ndarray
    var_lower: np.ndarray
    var_upper: np.ndarray
    integrality: np.ndarray
    variables: tuple[Var, ...]

    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_rows(self) -> int:
        return self.row_matrix.shape[0]


class MilpModel:
    """A mixed-integer linear program under construction."""

    #: Class-wide default for the pre-solve audit gate of :meth:`solve`
    #: (overridable per call). Off by default; the formulation tests and
    #: belt-and-braces deployments flip it on.
    audit_before_solve: ClassVar[bool] = False

    def __init__(self, name: str = "milp") -> None:
        self.name = name
        self._vars: list[Var] = []
        self._names: set[str] = set()
        self._constraints: list[Constraint] = []
        self._row_index: dict[str, int] = {}
        self._objective: LinExpr = LinExpr()
        self._sense_max = True
        self._compiled: CompiledMilp | None = None

    # ------------------------------------------------------------------
    # variables
    # ------------------------------------------------------------------
    def var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = float("inf"),
        integer: bool = False,
    ) -> Var:
        """Create and register a variable."""
        if name in self._names:
            raise SolverError(f"duplicate variable name {name!r}")
        v = Var(name, lower, upper, integer, index=len(self._vars))
        self._vars.append(v)
        self._names.add(name)
        self._compiled = None
        return v

    def binary(self, name: str) -> Var:
        """Create a {0,1} variable."""
        return self.var(name, 0.0, 1.0, integer=True)

    def continuous(self, name: str, lower: float = 0.0, upper: float = float("inf")) -> Var:
        """Create a continuous variable (non-negative by default)."""
        return self.var(name, lower, upper, integer=False)

    @property
    def variables(self) -> tuple[Var, ...]:
        return tuple(self._vars)

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    # ------------------------------------------------------------------
    # constraints and objective
    # ------------------------------------------------------------------
    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Add a constraint (optionally naming it for diagnostics)."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                f"expected a Constraint, got {type(constraint).__name__}; "
                "did a comparison produce a bool?"
            )
        for var in constraint.expr.terms:
            if var.index >= len(self._vars) or self._vars[var.index] is not var:
                raise SolverError(
                    f"constraint uses variable {var.name!r} from another model"
                )
        if name:
            constraint.named(name)
        elif not constraint.name:
            # Auto-number unnamed rows so audit reports and violation
            # listings can reference every constraint.
            constraint.named(f"r{len(self._constraints)}")
        self._row_index.setdefault(constraint.name, len(self._constraints))
        self._constraints.append(constraint)
        self._compiled = None
        return constraint

    def add_all(self, constraints: Iterable[Constraint], prefix: str = "") -> None:
        """Add several constraints, numbering them under ``prefix``.

        With an empty prefix the rows fall back to the model-wide
        ``r<index>`` auto-numbering instead of staying anonymous.
        """
        for i, con in enumerate(constraints):
            self.add(con, f"{prefix}[{i}]" if prefix else "")

    def maximize(self, expr: ExprLike) -> None:
        """Set a maximisation objective."""
        self._objective = LinExpr.from_(expr)
        self._sense_max = True
        self._compiled = None

    def minimize(self, expr: ExprLike) -> None:
        """Set a minimisation objective."""
        self._objective = LinExpr.from_(expr)
        self._sense_max = False
        self._compiled = None

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def constraint_named(self, name: str) -> Constraint | None:
        """The first constraint added under ``name``, or ``None``."""
        index = self._row_index.get(name)
        return self._constraints[index] if index is not None else None

    def set_rhs(self, name: str, rhs: float) -> bool:
        """Retarget one named row's right-hand side in place.

        The constraint ``expr <sense> rhs`` is stored normalised as
        ``expr - rhs <sense> 0``, so only the expression constant moves;
        the coefficient structure — and hence the row's audit identity —
        is untouched. A cached compilation is patched in place (no
        matrix rebuild), which is what makes successive fixpoint
        iterations on the same interval structure cheap.

        Returns ``False`` when no row of that name exists (a formulation
        may omit a row whose variable set is empty; retargeting it is
        then a no-op by construction).
        """
        index = self._row_index.get(name)
        if index is None:
            return False
        if not math.isfinite(rhs):
            raise SolverError(
                f"{self.name}: non-finite right-hand side {rhs!r} for "
                f"row {name!r}"
            )
        con = self._constraints[index]
        con.expr.constant = -float(rhs)
        if self._compiled is not None:
            lower, upper = con.bounds()
            self._compiled.row_lower[index] = lower
            self._compiled.row_upper[index] = upper
        return True

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def is_maximization(self) -> bool:
        return self._sense_max

    # ------------------------------------------------------------------
    # compilation / solving
    # ------------------------------------------------------------------
    def compile(self) -> CompiledMilp:
        """Lower the model to matrix form (canonical sense: maximise).

        The compilation is cached: structural edits (new variables or
        rows, a new objective) invalidate it, while :meth:`set_rhs`
        patches the cached row-bound arrays in place. Repeated solves
        of one model — an LP screen followed by the integer solve, or a
        warm-started fixpoint iteration — therefore compile once.
        """
        if self._compiled is not None:
            return self._compiled
        n = len(self._vars)
        if n == 0:
            raise SolverError("model has no variables")
        c = np.zeros(n)
        for var, coef in self._objective.terms.items():
            if not math.isfinite(coef):
                raise SolverError(
                    f"{self.name}: objective coefficient for {var.name!r} "
                    f"is {coef!r}; NaN/inf coefficients are rejected before "
                    "they can silently corrupt the solve"
                )
            c[var.index] = coef
        if not math.isfinite(self._objective.constant):
            raise SolverError(
                f"{self.name}: objective constant is "
                f"{self._objective.constant!r}"
            )
        if not self._sense_max:
            c = -c
        rows = np.zeros((len(self._constraints), n))
        row_lower = np.empty(len(self._constraints))
        row_upper = np.empty(len(self._constraints))
        for r, con in enumerate(self._constraints):
            label = con.name or f"r{r}"
            for var, coef in con.expr.terms.items():
                if not math.isfinite(coef):
                    raise SolverError(
                        f"{self.name}: constraint {label!r} has coefficient "
                        f"{coef!r} on {var.name!r}; NaN/inf coefficients are "
                        "rejected before they reach the backend"
                    )
                rows[r, var.index] = coef
            if not math.isfinite(con.expr.constant):
                raise SolverError(
                    f"{self.name}: constraint {label!r} has a non-finite "
                    f"constant {con.expr.constant!r}"
                )
            row_lower[r], row_upper[r] = con.bounds()
        self._compiled = CompiledMilp(
            objective=c,
            objective_constant=(
                self._objective.constant
                if self._sense_max
                else -self._objective.constant
            ),
            row_matrix=rows,
            row_lower=row_lower,
            row_upper=row_upper,
            var_lower=np.array([v.lower for v in self._vars]),
            var_upper=np.array([v.upper for v in self._vars]),
            integrality=np.array(
                [1 if v.integer else 0 for v in self._vars], dtype=int
            ),
            variables=tuple(self._vars),
        )
        return self._compiled

    def solve(
        self,
        backend: "MilpBackend | None" = None,
        audit: bool | None = None,
    ) -> MilpSolution:
        """Solve with the given backend (HiGHS by default).

        Args:
            backend: Solver backend; HiGHS when omitted.
            audit: Run the structural pre-solve audit
                (:func:`repro.milp.audit.audit_model`) and raise
                :class:`SolverError` if it reports any error-severity
                defect. ``None`` defers to the class-wide opt-in
                ``MilpModel.audit_before_solve``.
        """
        if audit is None:
            audit = MilpModel.audit_before_solve
        if audit:
            from repro.milp.audit import audit_model

            report = audit_model(self)
            if not report.ok:
                raise SolverError(
                    "pre-solve audit failed:\n" + report.render()
                )
        if backend is None:
            from repro.milp.highs import HighsBackend

            backend = HighsBackend()
        return backend.solve(self)

    def check_assignment(
        self, values: Sequence[float], tol: float = 1e-6
    ) -> list[Constraint]:
        """Return the constraints violated by a candidate assignment."""
        if len(values) != len(self._vars):
            raise SolverError("assignment length mismatch")
        mapping = {v: float(values[v.index]) for v in self._vars}
        return [c for c in self._constraints if not c.satisfied(mapping, tol)]

    def stats(self) -> dict[str, int]:
        """Model size summary (variables/binaries/constraints)."""
        return {
            "variables": len(self._vars),
            "integers": sum(1 for v in self._vars if v.integer),
            "constraints": len(self._constraints),
        }


class MilpBackend:
    """Interface implemented by MILP solving backends."""

    name = "abstract"

    def solve(self, model: MilpModel) -> MilpSolution:
        raise NotImplementedError
