"""Task-set serialisation: CSV and JSON.

CSV carries the evaluation-style sporadic parameters only
(``name,C,l,u,T,D`` — what the CLI consumes); JSON is lossless for
sporadic task sets including priorities, LS marks, and footprints.
"""

from __future__ import annotations

import csv
import io as _io
import json
from pathlib import Path

from repro.errors import ModelError
from repro.model.task import Task
from repro.model.taskset import TaskSet

CSV_COLUMNS = ("name", "C", "l", "u", "T", "D")


# ----------------------------------------------------------------------
# CSV
# ----------------------------------------------------------------------
def taskset_to_csv(taskset: TaskSet) -> str:
    """Serialise sporadic parameters as CSV (priorities are implied
    deadline-monotonically on load; LS marks are not carried)."""
    out = _io.StringIO()
    writer = csv.writer(out)
    writer.writerow(CSV_COLUMNS)
    for task in taskset:
        writer.writerow(
            [
                task.name,
                task.exec_time,
                task.copy_in,
                task.copy_out,
                task.period,
                task.deadline,
            ]
        )
    return out.getvalue()


def taskset_from_csv(text: str) -> TaskSet:
    """Parse the CSV format (header required)."""
    reader = csv.DictReader(_io.StringIO(text))
    if reader.fieldnames is None or not set(CSV_COLUMNS) <= set(
        reader.fieldnames
    ):
        raise ModelError(f"CSV must have columns {list(CSV_COLUMNS)}")
    rows = []
    for record in reader:
        try:
            rows.append(
                (
                    record["name"],
                    float(record["C"]),
                    float(record["l"]),
                    float(record["u"]),
                    float(record["T"]),
                    float(record["D"]),
                )
            )
        except (TypeError, ValueError) as exc:
            raise ModelError(f"malformed CSV row {record!r}: {exc}") from exc
    if not rows:
        raise ModelError("CSV contains no tasks")
    return TaskSet.from_parameters(rows)


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def taskset_to_json(taskset: TaskSet, indent: int = 2) -> str:
    """Lossless JSON for sporadic task sets."""
    payload = {
        "tasks": [
            {
                "name": task.name,
                "exec_time": task.exec_time,
                "copy_in": task.copy_in,
                "copy_out": task.copy_out,
                "period": task.period,
                "deadline": task.deadline,
                "priority": task.priority,
                "latency_sensitive": task.latency_sensitive,
                "footprint": task.footprint,
            }
            for task in taskset
        ]
    }
    return json.dumps(payload, indent=indent)


def taskset_from_json(text: str) -> TaskSet:
    """Parse the JSON format produced by :func:`taskset_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ModelError(f"invalid JSON: {exc}") from exc
    entries = payload.get("tasks")
    if not isinstance(entries, list) or not entries:
        raise ModelError("JSON must contain a non-empty 'tasks' list")
    tasks = []
    for entry in entries:
        try:
            tasks.append(
                Task.sporadic(
                    name=entry["name"],
                    exec_time=float(entry["exec_time"]),
                    copy_in=float(entry.get("copy_in", 0.0)),
                    copy_out=float(entry.get("copy_out", 0.0)),
                    period=float(entry["period"]),
                    deadline=float(entry["deadline"]),
                    priority=int(entry["priority"]),
                    latency_sensitive=bool(
                        entry.get("latency_sensitive", False)
                    ),
                    footprint=entry.get("footprint"),
                )
            )
        except KeyError as exc:
            raise ModelError(f"task entry missing field {exc}") from exc
    return TaskSet(tasks)


# ----------------------------------------------------------------------
# file helpers
# ----------------------------------------------------------------------
def load_taskset(path: str | Path) -> TaskSet:
    """Load a task set from a ``.csv`` or ``.json`` file by suffix."""
    path = Path(path)
    if not path.exists():
        raise ModelError(f"task-set file not found: {path}")
    text = path.read_text()
    if path.suffix.lower() == ".json":
        return taskset_from_json(text)
    return taskset_from_csv(text)


def save_taskset(taskset: TaskSet, path: str | Path) -> None:
    """Save a task set as ``.csv`` or ``.json`` by suffix."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        path.write_text(taskset_to_json(taskset))
    else:
        path.write_text(taskset_to_csv(taskset))
