"""Rule registry and module discovery for the invariant linter.

The engine parses every module under ``src/repro`` once into a
``{dotted-name: SourceModule}`` mapping and hands the whole mapping to
each rule. Per-module rules scan each tree independently; project
rules (cache-key completeness, worker determinism) correlate several
modules — which is exactly what off-the-shelf linters cannot do.
Rules take the mapping rather than the filesystem so tests can lint
tampered sources (e.g. a digest with a field deliberately removed).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Mapping


@dataclass(frozen=True)
class LintViolation:
    """One broken invariant at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class SourceModule:
    """One parsed source file, addressed by its dotted module name."""

    name: str
    path: str
    tree: ast.Module

    @staticmethod
    def parse(name: str, path: str, source: str) -> "SourceModule":
        return SourceModule(
            name=name, path=path, tree=ast.parse(source, filename=path)
        )


Rule = Callable[[Mapping[str, SourceModule]], list[LintViolation]]


def load_repo_modules(
    package_root: Path | None = None,
) -> dict[str, SourceModule]:
    """Parse every module of the installed ``repro`` package.

    Args:
        package_root: Directory of the ``repro`` package; defaults to
            the package this linter is part of, so ``repro lint``
            always checks the code it runs from.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parents[1]
    modules: dict[str, SourceModule] = {}
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root.parent)
        parts = list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        modules[name] = SourceModule.parse(name, str(path), path.read_text())
    return modules


def _registry() -> dict[str, Rule]:
    from repro.lint.cache_key import (
        cache_key_completeness_rule,
        solver_options_rule,
    )
    from repro.lint.determinism import worker_determinism_rule
    from repro.lint.rules import (
        float_time_equality_rule,
        mutable_default_rule,
    )

    return {
        "cache-key-completeness": cache_key_completeness_rule,
        "cache-key-solver-options": solver_options_rule,
        "worker-determinism": worker_determinism_rule,
        "float-time-equality": float_time_equality_rule,
        "mutable-default-argument": mutable_default_rule,
    }


#: Name -> rule mapping; ``run_lint(rules=...)`` selects a subset.
RULES: dict[str, Rule] = _registry()


def run_lint(
    modules: Mapping[str, SourceModule] | None = None,
    rules: Iterable[str] | None = None,
) -> list[LintViolation]:
    """Run the selected rules (all by default) over the module set.

    Returns the violations sorted by path and line; an empty list means
    every checked invariant holds.
    """
    if modules is None:
        modules = load_repo_modules()
    selected = list(rules) if rules is not None else sorted(RULES)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown}; known: {sorted(RULES)}"
        )
    violations: list[LintViolation] = []
    for name in selected:
        violations.extend(RULES[name](modules))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))
