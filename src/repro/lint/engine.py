"""Rule registry, module discovery, baselines, and SARIF output.

The engine parses every module under ``src/repro`` once into a
``{dotted-name: SourceModule}`` mapping and hands the whole mapping to
each rule. Per-module rules scan each tree independently; project
rules (cache-key completeness, worker determinism, the flow-aware
families from :mod:`repro.lint.dataflow`) correlate several modules —
which is exactly what off-the-shelf linters cannot do. Rules take the
mapping rather than the filesystem so tests can lint tampered sources
(e.g. a digest with a field deliberately removed).

Findings are :class:`LintViolation` objects carrying a severity
(``error`` fails the lint; ``warning`` only under ``--strict``) and a
stable :attr:`~LintViolation.fingerprint` — a content hash of
``(rule, path, message)`` that survives unrelated line shifts, so a
baseline file (:func:`load_baseline` / :func:`suppress_baseline`) can
grandfather known findings without pinning line numbers.
:func:`to_sarif` renders findings as SARIF 2.1.0 for CI annotation.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping

#: Finding severities: errors always fail the lint; warnings (used for
#: honestly-unprovable facts like fully dynamic event names) fail it
#: only under ``--strict``.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class LintViolation:
    """One broken invariant at one source location."""

    rule: str
    path: str
    line: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        tag = "" if self.severity == "error" else f" {self.severity}:"
        return f"{self.path}:{self.line}: [{self.rule}]{tag} {self.message}"

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselines: hash of rule, path, message.

        Deliberately excludes the line number so reformatting or
        adding code above a grandfathered finding does not churn the
        baseline; two identical findings in one file share a
        fingerprint and are suppressed together.
        """
        basis = f"{self.rule}|{Path(self.path).as_posix()}|{self.message}"
        return hashlib.sha256(basis.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class SourceModule:
    """One parsed source file, addressed by its dotted module name."""

    name: str
    path: str
    tree: ast.Module

    @staticmethod
    def parse(name: str, path: str, source: str) -> "SourceModule":
        return SourceModule(
            name=name, path=path, tree=ast.parse(source, filename=path)
        )


Rule = Callable[[Mapping[str, SourceModule]], list[LintViolation]]


@dataclass
class LoadedProject:
    """Module mapping plus the findings produced while loading it."""

    modules: dict[str, SourceModule] = field(default_factory=dict)
    findings: list[LintViolation] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)


def load_project(
    package_root: str | Path | None = None,
    exclude: tuple[str, ...] = (),
) -> LoadedProject:
    """Parse the ``repro`` package, tolerating broken files.

    A file that fails to parse becomes a ``parse-error`` finding (the
    rest of the tree still lints) instead of aborting the whole run.
    ``exclude`` entries are substring patterns matched against each
    file's POSIX-style path; matching files are skipped and recorded.
    """
    if package_root is None:
        package_root = Path(__file__).resolve().parents[1]
    package_root = Path(package_root)
    project = LoadedProject()
    for path in sorted(package_root.rglob("*.py")):
        posix = path.as_posix()
        if any(pattern in posix for pattern in exclude):
            project.skipped.append(str(path))
            continue
        relative = path.relative_to(package_root.parent)
        parts = list(relative.with_suffix("").parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        name = ".".join(parts)
        try:
            module = SourceModule.parse(name, str(path), path.read_text())
        except SyntaxError as exc:
            project.findings.append(LintViolation(
                rule="parse-error",
                path=str(path),
                line=exc.lineno or 0,
                message=f"cannot parse module: {exc.msg}",
            ))
            continue
        project.modules[name] = module
    return project


def load_repo_modules(
    package_root: Path | None = None,
) -> dict[str, SourceModule]:
    """Parse every module of the installed ``repro`` package.

    Strict variant of :func:`load_project`: raises on the first
    syntax error. Kept for callers (and tests) that lint a tree they
    know parses.

    Args:
        package_root: Directory of the ``repro`` package; defaults to
            the package this linter is part of, so ``repro lint``
            always checks the code it runs from.
    """
    project = load_project(package_root)
    if project.findings:
        first = project.findings[0]
        raise SyntaxError(f"{first.path}:{first.line}: {first.message}")
    return project.modules


def _registry() -> dict[str, Rule]:
    from repro.lint.cache_key import (
        cache_key_completeness_rule,
        solver_options_rule,
    )
    from repro.lint.determinism import worker_determinism_rule
    from repro.lint.durable_write import durable_write_rule
    from repro.lint.fork_safety import fork_safety_rule
    from repro.lint.rules import (
        float_time_equality_rule,
        mutable_default_rule,
    )
    from repro.lint.screen_soundness import screen_soundness_rule
    from repro.lint.trace_contract import trace_contract_rule

    return {
        "cache-key-completeness": cache_key_completeness_rule,
        "cache-key-solver-options": solver_options_rule,
        "worker-determinism": worker_determinism_rule,
        "float-time-equality": float_time_equality_rule,
        "mutable-default-argument": mutable_default_rule,
        "trace-contract": trace_contract_rule,
        "fork-safety": fork_safety_rule,
        "durable-write": durable_write_rule,
        "screen-soundness": screen_soundness_rule,
    }


#: Name -> rule mapping; ``run_lint(rules=...)`` selects a subset.
RULES: dict[str, Rule] = _registry()


def run_lint(
    modules: Mapping[str, SourceModule] | None = None,
    rules: Iterable[str] | None = None,
) -> list[LintViolation]:
    """Run the selected rules (all by default) over the module set.

    Returns the violations sorted by path and line; an empty list means
    every checked invariant holds.
    """
    if modules is None:
        modules = load_repo_modules()
    selected = list(rules) if rules is not None else sorted(RULES)
    unknown = [name for name in selected if name not in RULES]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown}; known: {sorted(RULES)}"
        )
    violations: list[LintViolation] = []
    for name in selected:
        violations.extend(RULES[name](modules))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
def load_baseline(path: str | Path) -> set[str]:
    """Fingerprints grandfathered by a baseline file.

    Accepts a JSON list of fingerprint strings or of objects with a
    ``fingerprint`` key (the format :func:`write_baseline` produces).
    Raises ``ValueError`` for unreadable or malformed files — the
    caller maps that to a usage error, never to a clean lint.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise ValueError(f"baseline {path} must be a JSON list")
    fingerprints: set[str] = set()
    for entry in data:
        if isinstance(entry, str):
            fingerprints.add(entry)
        elif isinstance(entry, dict) and isinstance(
            entry.get("fingerprint"), str
        ):
            fingerprints.add(entry["fingerprint"])
        else:
            raise ValueError(
                f"baseline {path}: entries must be fingerprint strings or "
                "objects with a 'fingerprint' key"
            )
    return fingerprints


def suppress_baseline(
    violations: Iterable[LintViolation], baseline: set[str]
) -> list[LintViolation]:
    """Violations whose fingerprint is *not* grandfathered."""
    return [v for v in violations if v.fingerprint not in baseline]


def write_baseline(
    violations: Iterable[LintViolation], path: str | Path
) -> None:
    """Write the current findings as a reviewable baseline file."""
    entries = [
        {
            "fingerprint": v.fingerprint,
            "rule": v.rule,
            "path": v.path,
            "message": v.message,
        }
        for v in sorted(
            violations, key=lambda v: (v.rule, v.path, v.message)
        )
    ]
    deduped: list[dict[str, str]] = []
    seen: set[str] = set()
    for entry in entries:
        if entry["fingerprint"] in seen:
            continue
        seen.add(entry["fingerprint"])
        deduped.append(entry)
    Path(path).write_text(json.dumps(deduped, indent=2) + "\n")


# ----------------------------------------------------------------------
# SARIF output (CI annotation)
# ----------------------------------------------------------------------
def to_sarif(violations: Iterable[LintViolation]) -> dict:
    """Findings as a SARIF 2.1.0 log (one run, one driver)."""
    results = []
    rule_ids: list[str] = []
    for violation in violations:
        if violation.rule not in rule_ids:
            rule_ids.append(violation.rule)
        results.append({
            "ruleId": violation.rule,
            "level": violation.severity,
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": Path(violation.path).as_posix(),
                    },
                    "region": {"startLine": max(1, violation.line)},
                },
            }],
            "fingerprints": {"reproLint/v1": violation.fingerprint},
        })
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": "https://example.invalid/repro",
                    "rules": [{"id": rule_id} for rule_id in sorted(rule_ids)],
                },
            },
            "results": results,
        }],
    }
