"""Project invariant linter (AST-based custom rules).

Generic linters cannot know that this repo's analysis cache must digest
*every* semantic input of the MILP formulation, or that code reachable
from the process-pool work units must be deterministic. These rules
encode exactly those invariants; they run as ``repro lint``, as
``python tools/lint_rules.py``, and in CI alongside ruff and mypy.

Rules
-----
``cache-key-completeness``
    Every :class:`repro.model.task.Task` attribute read by the MILP
    formulation must be covered by the analysis-cache digest (or be on
    the documented exemption list). See :mod:`repro.lint.cache_key`.
``cache-key-solver-options``
    Every :class:`repro.analysis.interface.AnalysisOptions` field must
    enter ``_solver_signature`` (or carry a written exemption), and
    the persistent store must define and gate on its
    ``SCHEMA_VERSION`` — together they keep cross-run cache entries
    from aliasing across solver configurations or store formats.
``worker-determinism``
    No unseeded randomness or wall-clock-dependent values in code
    statically reachable from the process-pool work units. See
    :mod:`repro.lint.determinism`.
``float-time-equality``
    No ``==``/``!=`` between time-valued floats (windows, WCRTs,
    phases); exact comparison of iterated fixpoint values is a
    tolerance bug waiting to happen.
``mutable-default-argument``
    No mutable default arguments (shared-state aliasing across calls).
"""

from repro.lint.engine import (
    RULES,
    LintViolation,
    SourceModule,
    load_repo_modules,
    run_lint,
)

__all__ = [
    "RULES",
    "LintViolation",
    "SourceModule",
    "load_repo_modules",
    "run_lint",
]
