"""Project invariant linter (flow- and call-graph-aware AST rules).

Generic linters cannot know that this repo's analysis cache must digest
*every* semantic input of the MILP formulation, that code reachable
from the process-pool work units must be deterministic, or that every
``os.replace`` needs an fsync proof. These rules encode exactly those
invariants; they run as ``repro lint``, as ``python
tools/lint_rules.py``, and in CI alongside ruff and mypy.

The engine (:mod:`repro.lint.engine`) parses the whole package once
and hands every rule the full module mapping; the flow-aware rules
share a :class:`~repro.lint.dataflow.ProjectModel` symbol table, an
intraprocedural CFG with reaching-definitions and must-precede-call
analyses (:mod:`repro.lint.dataflow`), and interprocedural literal
resolution through the call graph (:mod:`repro.lint.callgraph`).
Findings carry a severity (warnings fail only ``--strict``) and a
stable fingerprint for baseline suppression; ``repro lint`` can emit
SARIF for CI annotation.

Rules
-----
``cache-key-completeness``
    Every :class:`repro.model.task.Task` attribute read by the MILP
    formulation must be covered by the analysis-cache digest (or be on
    the documented exemption list). See :mod:`repro.lint.cache_key`.
``cache-key-solver-options``
    Every :class:`repro.analysis.interface.AnalysisOptions` field must
    enter ``_solver_signature`` (or carry a written exemption), and
    the persistent store must define and gate on its
    ``SCHEMA_VERSION`` — together they keep cross-run cache entries
    from aliasing across solver configurations or store formats.
``worker-determinism``
    No unseeded randomness or wall-clock-dependent values in code
    statically reachable from the process-pool work units. See
    :mod:`repro.lint.determinism`.
``float-time-equality``
    No ``==``/``!=`` between time-valued floats (windows, WCRTs,
    phases); exact comparison of iterated fixpoint values is a
    tolerance bug waiting to happen.
``mutable-default-argument``
    No mutable default arguments (shared-state aliasing across calls).
``trace-contract``
    Every ``emit()``/``span()`` site resolves (through the call
    graph) to event names declared in ``EVENT_NAMES``, with declared
    payload keys and literal types; no dead catalogue entries; emit
    sinks accept the full envelope; ``bump`` counters reconcile with
    ``COUNTER_NAMES`` and the sweep report. See
    :mod:`repro.lint.trace_contract`.
``fork-safety``
    Nothing pickled across the ``ProcessPoolExecutor`` boundary holds
    a database connection, open file handle, or unseeded RNG; the
    module-level scope stacks are only mutated inside
    ``@contextmanager`` functions. See :mod:`repro.lint.fork_safety`.
``durable-write``
    Dataflow proof that every ``os.replace`` is preceded on all paths
    by an fsync of the source file and followed by a directory sync.
    See :mod:`repro.lint.durable_write`.
``screen-soundness``
    Every producer of ``("lp", bound)`` screening entries carries the
    ``@bound_producer`` tag, and the store keeps its rank-ordered
    upsert guards. See :mod:`repro.lint.screen_soundness`.
"""

from repro.lint.engine import (
    RULES,
    LintViolation,
    LoadedProject,
    SourceModule,
    load_baseline,
    load_project,
    load_repo_modules,
    run_lint,
    suppress_baseline,
    to_sarif,
    write_baseline,
)

__all__ = [
    "RULES",
    "LintViolation",
    "LoadedProject",
    "SourceModule",
    "load_baseline",
    "load_project",
    "load_repo_modules",
    "run_lint",
    "suppress_baseline",
    "to_sarif",
    "write_baseline",
]
