"""Screen-soundness direction check (the ``screen-soundness`` rule).

The LP-relaxation screens introduced in PR 4/6 are *upper bounds*:
safe to use for "this task set is schedulable anyway" short-circuits,
never a substitute for the exact MILP optimum. Both cache tiers
enforce the ordering dynamically — the sqlite store with its
rank-ordered upsert (``WHERE excluded.rank > entries.rank``), the
memory tier with the mirror guard in
:meth:`repro.analysis.cache.AnalysisCache.put` — but nothing stopped
a new code path from *producing* an ``("lp", bound)`` entry in the
first place without thinking about soundness.

This rule closes the production side: every call that stores a
literal ``("lp", ...)`` tuple (directly or through a local whose
reaching definitions include one) into a ``put``/``store`` sink must
sit inside a function carrying the
:func:`repro.analysis.cache.bound_producer` decorator. Bare parameter
forwarding (``cache.put`` passing ``value`` through to the persistent
tier) is exempt — the producer was tagged at the origin.

Two structural guards keep the dynamic enforcement honest:
``ENTRY_RANKS`` in ``repro.analysis.store`` must keep ``lp`` strictly
below ``milp``, and the upsert SQL must retain its rank comparison.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.lint.dataflow import FunctionFlow, project_model
from repro.lint.engine import LintViolation, SourceModule

RULE = "screen-soundness"

STORE_MODULE = "repro.analysis.store"
DECORATOR = "bound_producer"
SINKS = frozenset({"put", "store"})


def _violation(
    path: str, line: int, message: str, severity: str = "error"
) -> LintViolation:
    return LintViolation(
        rule=RULE, path=path, line=line, message=message, severity=severity
    )


def _is_lp_tuple(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Tuple)
        and bool(node.elts)
        and isinstance(node.elts[0], ast.Constant)
        and node.elts[0].value == "lp"
    )


def screen_soundness_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Every lp-entry producer must be explicitly tagged."""
    model = project_model(modules)
    violations: list[LintViolation] = []
    flows: dict[str, FunctionFlow] = {}

    for site in model.calls:
        func = site.call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in SINKS
            and len(site.call.args) >= 2
        ):
            continue
        value = site.call.args[1]
        lp_producing = _is_lp_tuple(value)
        if (
            not lp_producing
            and isinstance(value, ast.Name)
            and site.enclosing is not None
        ):
            flow = flows.get(site.enclosing.qualname)
            if flow is None:
                flow = FunctionFlow(site.enclosing.node)
                flows[site.enclosing.qualname] = flow
            stmt = flow.statement_of(site.call)
            if stmt is not None:
                lp_producing = any(
                    _is_lp_tuple(definition)
                    for definition in flow.reaching(stmt, value.id)
                )
        if not lp_producing:
            continue
        if site.enclosing is None:
            violations.append(_violation(
                site.path, site.call.lineno,
                'an ("lp", ...) entry is stored at module level; '
                "screening bounds may only be produced by "
                f"@{DECORATOR}-tagged functions",
            ))
        elif not site.enclosing.decorated_with(DECORATOR):
            violations.append(_violation(
                site.path, site.call.lineno,
                f'{site.enclosing.name}() stores an ("lp", ...) '
                f"screening entry but is not decorated with "
                f"@{DECORATOR}; tag it (and review that its bound is "
                "a true upper bound) or store an exact entry",
            ))

    violations.extend(_check_store_guards(modules))
    return violations


def _check_store_guards(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    store = modules.get(STORE_MODULE)
    if store is None:
        return [_violation(
            "<module set>", 0,
            f"cannot check rank guards: module {STORE_MODULE} missing",
        )]
    violations: list[LintViolation] = []

    ranks: object = None
    ranks_line = 1
    for node in store.tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if isinstance(target, ast.Name) and target.id == "ENTRY_RANKS":
            value = getattr(node, "value", None)
            if value is not None:
                try:
                    ranks = ast.literal_eval(value)
                    ranks_line = node.lineno
                except ValueError:
                    ranks = None
    if not (
        isinstance(ranks, dict)
        and isinstance(ranks.get("lp"), int)
        and isinstance(ranks.get("milp"), int)
        and ranks["lp"] < ranks["milp"]
    ):
        violations.append(_violation(
            store.path, ranks_line,
            "ENTRY_RANKS must rank 'lp' strictly below 'milp'; the "
            "upsert soundness order depends on it",
        ))

    guarded = any(
        isinstance(node, ast.Constant)
        and isinstance(node.value, str)
        and "excluded.rank > entries.rank" in node.value
        for node in ast.walk(store.tree)
    )
    if not guarded:
        violations.append(_violation(
            store.path, 1,
            "the store upsert no longer carries the "
            "'excluded.rank > entries.rank' guard; a screening bound "
            "could overwrite an exact optimum",
        ))
    return violations
