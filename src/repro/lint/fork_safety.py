"""Fork-safety and concurrency-discipline checks (``fork-safety``).

The parallel sweep engine ships work units to a
``ProcessPoolExecutor``: every argument of every ``pool.submit(...)``
call is pickled, sent over a pipe, and unpickled in a worker that
shares nothing with the parent. Three classes of state silently
survive that trip in a broken form:

* ``sqlite3`` connections — unpicklable in theory, but easily smuggled
  inside a wrapper object whose ``__reduce__`` hides them; the store
  deliberately opens its connection *inside* the worker instead;
* open file handles — pickle refuses raw handles but duplicated
  descriptors via custom state land on the wrong side of the fork;
* unseeded RNGs (``default_rng()`` with no arguments) — each worker
  would re-derive entropy differently, destroying the bit-identical
  sequential/parallel equivalence the experiment tests assert.

The rule resolves every ``submit`` callee to its project definition,
collects the project classes its annotations mention, transitively
closes over their field annotations, and flags any class in that
pickled surface whose methods assign a connection, handle, or unseeded
RNG to ``self`` (classes that curate their state via ``__getstate__``
or ``__reduce__`` are exempt). The sweep service added a second spawn
boundary with the same pickling semantics: a
``multiprocessing.Process(target=...)`` worker is forked/spawned with
its target and args pickled exactly like a pool submission, so
``Process`` targets join the audit — they must be module-level
functions in the spawning module and their annotation-derived pickled
surface is checked with the same resource rules.

The second half enforces the scope-stack discipline introduced with
``cache_scope``/``injecting``/``recording``: the module-level LIFO
stacks (:data:`STACK_NAMES`) may only be mutated inside functions
decorated with ``@contextmanager`` — the only shape that guarantees a
matched pop on every exit path, which fault-injection tests rely on.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.lint.dataflow import (
    CallSite,
    ClassInfo,
    ProjectModel,
    call_name,
    project_model,
)
from repro.lint.engine import LintViolation, SourceModule

RULE = "fork-safety"

#: Module-level LIFO scope stacks under context-manager discipline.
STACK_NAMES = frozenset({"_SCOPES", "_RECORDERS"})
#: List methods that mutate a stack.
MUTATORS = frozenset(
    {"append", "pop", "clear", "extend", "insert", "remove"}
)


def _violation(
    path: str, line: int, message: str, severity: str = "error"
) -> LintViolation:
    return LintViolation(
        rule=RULE, path=path, line=line, message=message, severity=severity
    )


def _annotation_names(annotation: ast.expr) -> Iterator[str]:
    """Every plain name an annotation expression mentions.

    Handles subscripts (``list[X]``), unions (``X | None``), and
    string annotations (``"X | None"``) by parsing and walking.
    """
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return
        yield from _annotation_names(parsed.body)
        return
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr


def _class_annotations(cls: ClassInfo) -> Iterator[ast.expr]:
    """Field and ``__init__`` parameter annotations of a class."""
    for stmt in cls.node.body:
        if isinstance(stmt, ast.AnnAssign):
            yield stmt.annotation
        elif isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            args = stmt.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is not None:
                    yield arg.annotation


def _pickled_surface(
    roots: Iterator[str], model: ProjectModel
) -> dict[str, ClassInfo]:
    """Project classes transitively reachable from annotation names."""
    surface: dict[str, ClassInfo] = {}
    queue = list(dict.fromkeys(roots))
    while queue:
        name = queue.pop()
        if name in surface:
            continue
        cls = model.class_named(name)
        if cls is None:
            continue
        surface[name] = cls
        for annotation in _class_annotations(cls):
            queue.extend(_annotation_names(annotation))
    return surface


def _curates_state(cls: ClassInfo) -> bool:
    return any(
        isinstance(stmt, ast.FunctionDef)
        and stmt.name in ("__getstate__", "__reduce__")
        for stmt in cls.node.body
    )


def _unsafe_resource(call: ast.Call) -> str | None:
    """Human description when a call creates fork-unsafe state."""
    name = call_name(call)
    if name is None:
        return None
    if name == "open" or name.endswith(".open"):
        return "an open file handle"
    if name == "connect" or name.endswith(".connect"):
        return "a database connection"
    if name == "default_rng" or name.endswith(".default_rng"):
        if not call.args and not call.keywords:
            return "an unseeded random generator"
    return None


def _unsafe_self_assignments(
    cls: ClassInfo,
) -> Iterator[tuple[str, str, int]]:
    """``(attribute, resource, line)`` for fork-unsafe ``self.x = ...``."""
    for stmt in cls.node.body:
        if not isinstance(stmt, ast.FunctionDef):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                for call in ast.walk(node.value):
                    if isinstance(call, ast.Call):
                        resource = _unsafe_resource(call)
                        if resource is not None:
                            yield target.attr, resource, node.lineno


def _uses_process_pool(module: SourceModule) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if any(a.name == "ProcessPoolExecutor" for a in node.names):
                return True
        elif isinstance(node, ast.Import):
            if any(a.name == "concurrent.futures" for a in node.names):
                return True
    return False


def _uses_multiprocessing(module: SourceModule) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "multiprocessing":
                return True
        elif isinstance(node, ast.Import):
            if any(
                a.name.split(".")[0] == "multiprocessing"
                for a in node.names
            ):
                return True
    return False


def _spawn_callee_violations(
    site: CallSite,
    callee: ast.expr,
    model: ProjectModel,
    label: str,
    boundary: str,
) -> list[LintViolation]:
    """Audit the pickled surface of a function shipped to a child.

    Shared between ``pool.submit(fn, ...)`` and
    ``multiprocessing.Process(target=fn, ...)``: both pickle the
    callee by qualified name and its arguments by value, so the same
    module-level-definition and annotation-surface checks apply.
    """
    violations: list[LintViolation] = []
    if not isinstance(callee, ast.Name):
        violations.append(_violation(
            site.path, site.call.lineno,
            f"{label} callee is not a module-level function name; "
            "its pickled surface cannot be checked", "warning",
        ))
        return violations
    definitions = [
        fn for fn in model.by_name.get(callee.id, [])
        if fn.module == site.module and not fn.is_method
    ]
    if not definitions:
        violations.append(_violation(
            site.path, site.call.lineno,
            f"{label} callee {callee.id!r} has no module-level "
            "definition in this module; workers can only import "
            "top-level functions", "warning",
        ))
        return violations
    for fn in definitions:
        args = fn.node.args
        annotations = [
            a.annotation
            for a in args.posonlyargs + args.args + args.kwonlyargs
            if a.annotation is not None
        ]
        roots: list[str] = []
        for annotation in annotations:
            roots.extend(_annotation_names(annotation))
        for name, cls in sorted(
            _pickled_surface(iter(roots), model).items()
        ):
            if _curates_state(cls):
                continue
            for attr, resource, line in _unsafe_self_assignments(cls):
                violations.append(_violation(
                    cls.path, line,
                    f"{name}.{attr} holds {resource} but {name} "
                    f"crosses the {boundary} boundary via "
                    f"{fn.name}() ({site.path}:{site.call.lineno}); "
                    "open it worker-side or add __getstate__",
                ))
    return violations


def fork_safety_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Check pickle boundaries and scope-stack discipline."""
    model = project_model(modules)
    violations: list[LintViolation] = []

    pool_modules = {
        name for name, module in modules.items()
        if _uses_process_pool(module)
    }
    mp_modules = {
        name for name, module in modules.items()
        if _uses_multiprocessing(module)
    }
    for site in model.calls:
        func = site.call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "submit"
            and site.module in pool_modules
            and site.call.args
        ):
            violations.extend(_spawn_callee_violations(
                site, site.call.args[0], model,
                "submit()", "process-pool",
            ))
            continue
        name = call_name(site.call)
        if (
            name is not None
            and (name == "Process" or name.endswith(".Process"))
            and site.module in mp_modules
        ):
            target = next(
                (kw.value for kw in site.call.keywords
                 if kw.arg == "target"),
                None,
            )
            if target is not None:
                violations.extend(_spawn_callee_violations(
                    site, target, model,
                    "Process(target=...)", "spawned-process",
                ))

    violations.extend(_check_scope_stacks(modules, model))
    return violations


def _module_stacks(module: SourceModule) -> set[str]:
    """Module-level names in :data:`STACK_NAMES` bound to a list."""
    stacks: set[str] = set()
    for node in module.tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in STACK_NAMES:
                stacks.add(target.id)
    return stacks


def _check_scope_stacks(
    modules: Mapping[str, SourceModule], model: ProjectModel
) -> list[LintViolation]:
    violations: list[LintViolation] = []
    stack_owners = {
        name: _module_stacks(module) for name, module in modules.items()
    }
    for site in model.calls:
        func = site.call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATORS
            and isinstance(func.value, ast.Name)
            and func.value.id in stack_owners.get(site.module, set())
        ):
            continue
        stack = func.value.id
        if site.enclosing is None:
            violations.append(_violation(
                site.path, site.call.lineno,
                f"module-level scope stack {stack} mutated at import "
                "time; stacks may only change inside context managers",
            ))
        elif not site.enclosing.decorated_with("contextmanager"):
            violations.append(_violation(
                site.path, site.call.lineno,
                f"scope stack {stack} mutated in "
                f"{site.enclosing.name}(), which is not decorated with "
                "@contextmanager; an exception could leave the stack "
                "unbalanced",
            ))
    return violations
