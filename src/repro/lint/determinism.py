"""Worker-determinism rule: no nondeterminism in process-pool work.

The parallel sweep engine promises bit-identical results between
``--jobs 1`` and ``--jobs N``; that promise dies the moment anything a
worker computes reads the wall clock or an unseeded RNG. This rule
walks the static import graph from the process-pool work-unit modules
(:data:`WORKER_ROOTS`) and flags, in every reachable module:

* any import of the stdlib ``random`` module (its global state is
  per-process and unseeded — use a seeded ``numpy`` Generator);
* wall-clock reads whose value could leak into results —
  ``time.time``/``time_ns``, ``datetime.now``/``utcnow``,
  ``date.today`` (monotonic timers like ``time.perf_counter`` are
  allowed: they are used for *reporting* elapsed time, which is
  deliberately outside the bit-identity contract);
* entropy sources: ``os.urandom``, ``uuid.uuid1``/``uuid4``,
  ``secrets.*``;
* legacy ``numpy.random`` global-state calls (``np.random.seed``,
  ``np.random.random``, ...) and **unseeded** ``default_rng()`` /
  ``SeedSequence()`` constructions.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.lint.dataflow import dotted
from repro.lint.engine import LintViolation, SourceModule

#: Modules holding the process-pool work units; everything they can
#: statically reach must stay deterministic.
WORKER_ROOTS = ("repro.experiments.runner",)

#: Dotted-call suffixes (last two components) that read wall clock or
#: entropy. ``time.perf_counter``/``monotonic`` are deliberately absent.
BANNED_CALL_SUFFIXES = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
})

#: numpy.random attributes that are fine to construct (explicitly
#: seeded generators); every other ``*.random.*`` call is legacy
#: global-state API.
_SEEDED_FACTORIES = frozenset({"default_rng", "Generator", "SeedSequence"})


def import_edges(module: SourceModule) -> set[str]:
    """Dotted names of ``repro`` modules this module imports."""
    edges: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    edges.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            target = node.module or ""
            if node.level:  # resolve relative imports against self
                base = module.name.split(".")
                base = base[: len(base) - node.level]
                target = ".".join(base + ([target] if target else []))
            if target.startswith("repro"):
                edges.add(target)
                # `from repro.pkg import sub` may name a submodule.
                for alias in node.names:
                    edges.add(f"{target}.{alias.name}")
    return edges


def reachable_modules(
    modules: Mapping[str, SourceModule],
    roots: tuple[str, ...] = WORKER_ROOTS,
) -> set[str]:
    """Modules statically reachable from the worker entry points."""
    seen: set[str] = set()
    frontier = [root for root in roots if root in modules]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        for edge in import_edges(modules[name]):
            if edge in modules and edge not in seen:
                frontier.append(edge)
    return seen


def _module_violations(module: SourceModule) -> list[LintViolation]:
    violations: list[LintViolation] = []

    def flag(line: int, message: str) -> None:
        violations.append(LintViolation(
            rule="worker-determinism",
            path=module.path,
            line=line,
            message=message,
        ))

    from_time_aliases: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    flag(node.lineno, (
                        "stdlib `random` imported in worker-reachable "
                        "code; use a seeded numpy Generator"
                    ))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                flag(node.lineno, (
                    "stdlib `random` imported in worker-reachable code; "
                    "use a seeded numpy Generator"
                ))
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        from_time_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in from_time_aliases
            ):
                flag(node.lineno, (
                    f"wall-clock call {node.func.id}() in "
                    "worker-reachable code; results must not depend "
                    "on the clock"
                ))
                continue
            target = dotted(node.func)
            if target is None:
                continue
            parts = target.split(".")
            suffix = ".".join(parts[-2:])
            if suffix in BANNED_CALL_SUFFIXES:
                flag(node.lineno, (
                    f"nondeterministic call {target}() in "
                    "worker-reachable code"
                ))
            elif "random" in parts[:-1]:
                if parts[-1] not in _SEEDED_FACTORIES:
                    flag(node.lineno, (
                        f"legacy global-state RNG call {target}(); use a "
                        "seeded Generator from default_rng(seed)"
                    ))
                elif not node.args and not node.keywords:
                    flag(node.lineno, (
                        f"unseeded {target}() draws OS entropy; pass an "
                        "explicit seed in worker-reachable code"
                    ))
            elif (
                parts[-1] in ("default_rng", "SeedSequence")
                and not node.args
                and not node.keywords
            ):
                flag(node.lineno, (
                    f"unseeded {target}() draws OS entropy; pass an "
                    "explicit seed in worker-reachable code"
                ))
    return violations


def worker_determinism_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Check every worker-reachable module for nondeterminism."""
    violations: list[LintViolation] = []
    for name in sorted(reachable_modules(modules)):
        violations.extend(_module_violations(modules[name]))
    return violations
