"""Cache-key completeness rule.

PR 2's bit-identity guarantee rests on one claim: the analysis-cache
digest (:func:`repro.analysis.cache._task_signature` plus the budgets
the caller supplies) captures *every* semantic input of the MILP
formulation. Nothing structural enforces that — someone adding, say, a
``preemption_cost`` field to :class:`~repro.model.task.Task` and
reading it in the formulation would silently make two different MILPs
share a cache entry.

This rule closes the loop statically: every ``Task`` attribute read by
the formulation layer must either appear in ``_task_signature`` or be
on the documented exemption list below. Both sides are read from the
AST, so deleting a field from the digest (or reading a new one in the
formulation) fails the lint immediately.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.lint.engine import LintViolation, SourceModule

#: Module holding the digest and the function that signs one task.
CACHE_MODULE = "repro.analysis.cache"
SIGNATURE_FUNCTION = "_task_signature"

#: Modules whose Task-attribute reads define the MILP's semantic inputs.
FORMULATION_MODULES = (
    "repro.analysis.proposed.formulation",
    "repro.analysis.proposed.intervals",
)

#: Module defining the Task dataclass whose fields we track.
TASK_MODULE = "repro.model.task"

#: Task attributes that may be read by the formulation without
#: appearing in ``_task_signature`` — each covered by the key through
#: another channel, or provably non-semantic. Grow this list only with
#: a written justification; an empty reason fails closed.
EXEMPT_TASK_ATTRS: dict[str, str] = {
    "name": "labels variables only; the cache is content-addressed",
    "priority": "enters the key as each task's hp/lp side flag",
    "eta": "arrival curves enter the key via the integer budgets",
    "arrivals": "arrival curves enter the key via the integer budgets",
    "period": "arrival curves enter the key via the integer budgets",
    "deadline": "gates verdicts outside the MILP; never shapes the model",
    "footprint": "partitioning-time data; never read by the formulation",
    "total_cost": "derived from (l, C, u), all of which are digested",
    "utilization": "derived from exec_time and period",
    "total_utilization": "derived from digested fields and period",
    "trivially_unschedulable": "verdict shortcut; never shapes the model",
}


def task_attribute_names(task_module: SourceModule) -> set[str]:
    """Field, property, and method names of the Task class."""
    names: set[str] = set()
    for node in ast.walk(task_module.tree):
        if isinstance(node, ast.ClassDef) and node.name == "Task":
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names.add(item.target.id)
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("__"):
                        names.add(item.name)
    return names


def signature_attributes(cache_module: SourceModule) -> set[str]:
    """Task attributes the digest's ``_task_signature`` reads."""
    for node in ast.walk(cache_module.tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == SIGNATURE_FUNCTION
        ):
            if not node.args.args:
                return set()
            param = node.args.args[0].arg
            return {
                sub.attr
                for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == param
            }
    return set()


def cache_key_completeness_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Uncovered Task-attribute reads in the formulation layer."""
    required = (CACHE_MODULE, TASK_MODULE, *FORMULATION_MODULES)
    missing = [name for name in required if name not in modules]
    if missing:
        return [LintViolation(
            rule="cache-key-completeness",
            path="<module set>",
            line=0,
            message=f"cannot check: module(s) {missing} not in the lint set",
        )]

    fields = task_attribute_names(modules[TASK_MODULE])
    covered = signature_attributes(modules[CACHE_MODULE])
    if not covered:
        return [LintViolation(
            rule="cache-key-completeness",
            path=modules[CACHE_MODULE].path,
            line=1,
            message=(
                f"{SIGNATURE_FUNCTION} not found or digests no Task "
                "attribute: the cache key cannot be complete"
            ),
        )]

    violations: list[LintViolation] = []
    for module_name in FORMULATION_MODULES:
        module = modules[module_name]
        flagged: set[tuple[int, str]] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if attr not in fields or attr in covered:
                continue
            if EXEMPT_TASK_ATTRS.get(attr):
                continue
            if (node.lineno, attr) in flagged:
                continue
            flagged.add((node.lineno, attr))
            violations.append(LintViolation(
                rule="cache-key-completeness",
                path=module.path,
                line=node.lineno,
                message=(
                    f"Task attribute {attr!r} is read by the formulation "
                    f"but missing from {SIGNATURE_FUNCTION} in "
                    f"{CACHE_MODULE}; two semantically different MILPs "
                    "could share a cache entry. Digest it or add a "
                    "justified exemption."
                ),
            ))
    return violations
