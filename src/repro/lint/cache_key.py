"""Cache-key completeness rules.

PR 2's bit-identity guarantee rests on one claim: the analysis-cache
digest (:func:`repro.analysis.cache._task_signature` plus the budgets
the caller supplies) captures *every* semantic input of the MILP
formulation. Nothing structural enforces that — someone adding, say, a
``preemption_cost`` field to :class:`~repro.model.task.Task` and
reading it in the formulation would silently make two different MILPs
share a cache entry.

``cache-key-completeness`` closes that loop statically: every ``Task``
attribute read by the formulation layer must either appear in
``_task_signature`` or be on the documented exemption list below. Both
sides are read from the AST, so deleting a field from the digest (or
reading a new one in the formulation) fails the lint immediately.

``cache-key-solver-options`` guards the two channels the persistent
cache added:

* every :class:`~repro.analysis.interface.AnalysisOptions` field must
  be read by ``_solver_signature`` (it scopes cache keys to the solver
  configuration) or carry a written exemption explaining why two runs
  differing only in that field may share entries;
* :mod:`repro.analysis.store` must define ``SCHEMA_VERSION`` and gate
  its connection setup on it — the cross-run store may never serve
  entries written under a different encoding.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.lint.engine import LintViolation, SourceModule

#: Module holding the digest and the function that signs one task.
CACHE_MODULE = "repro.analysis.cache"
SIGNATURE_FUNCTION = "_task_signature"

#: Modules whose Task-attribute reads define the MILP's semantic inputs.
FORMULATION_MODULES = (
    "repro.analysis.proposed.formulation",
    "repro.analysis.proposed.intervals",
)

#: Module defining the Task dataclass whose fields we track.
TASK_MODULE = "repro.model.task"

#: Task attributes that may be read by the formulation without
#: appearing in ``_task_signature`` — each covered by the key through
#: another channel, or provably non-semantic. Grow this list only with
#: a written justification; an empty reason fails closed.
EXEMPT_TASK_ATTRS: dict[str, str] = {
    "name": "labels variables only; the cache is content-addressed",
    "priority": "enters the key as each task's hp/lp side flag",
    "eta": "arrival curves enter the key via the integer budgets",
    "arrivals": "arrival curves enter the key via the integer budgets",
    "period": "arrival curves enter the key via the integer budgets",
    "deadline": "gates verdicts outside the MILP; never shapes the model",
    "footprint": "partitioning-time data; never read by the formulation",
    "total_cost": "derived from (l, C, u), all of which are digested",
    "utilization": "derived from exec_time and period",
    "total_utilization": "derived from digested fields and period",
    "trivially_unschedulable": "verdict shortcut; never shapes the model",
}

#: Module defining AnalysisOptions and the analysis that signs them.
OPTIONS_MODULE = "repro.analysis.interface"
ANALYSIS_MODULE = "repro.analysis.proposed.response_time"
SOLVER_SIGNATURE_FUNCTION = "_solver_signature"

#: Module holding the persistent store whose schema version we check.
STORE_MODULE = "repro.analysis.store"

#: AnalysisOptions fields that may stay out of ``_solver_signature`` —
#: each provably unable to change any *individual* solve's optimum.
#: Grow this list only with a written justification; an empty reason
#: fails closed.
EXEMPT_OPTION_FIELDS: dict[str, str] = {
    "max_iterations": (
        "bounds how many windows the fixpoint visits, never the optimum "
        "of any one windowed MILP the cache memoises"
    ),
    "stop_at_deadline": (
        "aborts the iteration between solves; each solved window's "
        "optimum is unchanged"
    ),
    "convergence_eps": (
        "decides when the iteration stops consuming values, not what "
        "any solve returns"
    ),
    "screening": (
        "selects which sufficient conditions are tried before a solve; "
        "every solved window's optimum — the value the cache stores — "
        "is unchanged"
    ),
}


def task_attribute_names(task_module: SourceModule) -> set[str]:
    """Field, property, and method names of the Task class."""
    names: set[str] = set()
    for node in ast.walk(task_module.tree):
        if isinstance(node, ast.ClassDef) and node.name == "Task":
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    names.add(item.target.id)
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not item.name.startswith("__"):
                        names.add(item.name)
    return names


def signature_attributes(cache_module: SourceModule) -> set[str]:
    """Task attributes the digest's ``_task_signature`` reads."""
    for node in ast.walk(cache_module.tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == SIGNATURE_FUNCTION
        ):
            if not node.args.args:
                return set()
            param = node.args.args[0].arg
            return {
                sub.attr
                for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == param
            }
    return set()


def cache_key_completeness_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Uncovered Task-attribute reads in the formulation layer."""
    required = (CACHE_MODULE, TASK_MODULE, *FORMULATION_MODULES)
    missing = [name for name in required if name not in modules]
    if missing:
        return [LintViolation(
            rule="cache-key-completeness",
            path="<module set>",
            line=0,
            message=f"cannot check: module(s) {missing} not in the lint set",
        )]

    fields = task_attribute_names(modules[TASK_MODULE])
    covered = signature_attributes(modules[CACHE_MODULE])
    if not covered:
        return [LintViolation(
            rule="cache-key-completeness",
            path=modules[CACHE_MODULE].path,
            line=1,
            message=(
                f"{SIGNATURE_FUNCTION} not found or digests no Task "
                "attribute: the cache key cannot be complete"
            ),
        )]

    violations: list[LintViolation] = []
    for module_name in FORMULATION_MODULES:
        module = modules[module_name]
        flagged: set[tuple[int, str]] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if attr not in fields or attr in covered:
                continue
            if EXEMPT_TASK_ATTRS.get(attr):
                continue
            if (node.lineno, attr) in flagged:
                continue
            flagged.add((node.lineno, attr))
            violations.append(LintViolation(
                rule="cache-key-completeness",
                path=module.path,
                line=node.lineno,
                message=(
                    f"Task attribute {attr!r} is read by the formulation "
                    f"but missing from {SIGNATURE_FUNCTION} in "
                    f"{CACHE_MODULE}; two semantically different MILPs "
                    "could share a cache entry. Digest it or add a "
                    "justified exemption."
                ),
            ))
    return violations


def options_fields(options_module: SourceModule) -> dict[str, int]:
    """AnalysisOptions field names with their definition lines."""
    fields: dict[str, int] = {}
    for node in ast.walk(options_module.tree):
        if isinstance(node, ast.ClassDef) and node.name == "AnalysisOptions":
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    fields[item.target.id] = item.lineno
    return fields


def solver_signature_options(analysis_module: SourceModule) -> set[str]:
    """``options`` attributes ``_solver_signature`` reads.

    Matches both ``self.options.<field>`` and ``options.<field>`` on a
    local alias, so refactoring the method body does not defeat the
    rule.
    """
    for node in ast.walk(analysis_module.tree):
        if (
            isinstance(node, ast.FunctionDef)
            and node.name == SOLVER_SIGNATURE_FUNCTION
        ):
            return {
                sub.attr
                for sub in ast.walk(node)
                if isinstance(sub, ast.Attribute)
                and (
                    (
                        isinstance(sub.value, ast.Attribute)
                        and sub.value.attr == "options"
                    )
                    or (
                        isinstance(sub.value, ast.Name)
                        and sub.value.id == "options"
                    )
                )
            }
    return set()


def _store_schema_ok(store_module: SourceModule) -> tuple[bool, bool]:
    """``(defined, used)`` for ``SCHEMA_VERSION`` in the store module."""
    defined = False
    for node in store_module.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "SCHEMA_VERSION"
            for t in node.targets
        ):
            defined = True
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ) and node.target.id == "SCHEMA_VERSION":
            defined = True
    used = any(
        isinstance(node, ast.Name)
        and node.id == "SCHEMA_VERSION"
        and isinstance(node.ctx, ast.Load)
        for node in ast.walk(store_module.tree)
    )
    return defined, used


def solver_options_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Option fields missing from the solver signature, and the
    persistent store's schema-version gate."""
    required = (OPTIONS_MODULE, ANALYSIS_MODULE, STORE_MODULE)
    missing = [name for name in required if name not in modules]
    if missing:
        return [LintViolation(
            rule="cache-key-solver-options",
            path="<module set>",
            line=0,
            message=f"cannot check: module(s) {missing} not in the lint set",
        )]

    violations: list[LintViolation] = []
    fields = options_fields(modules[OPTIONS_MODULE])
    signed = solver_signature_options(modules[ANALYSIS_MODULE])
    if not fields:
        violations.append(LintViolation(
            rule="cache-key-solver-options",
            path=modules[OPTIONS_MODULE].path,
            line=1,
            message="AnalysisOptions defines no fields; rule cannot anchor",
        ))
    if not signed:
        violations.append(LintViolation(
            rule="cache-key-solver-options",
            path=modules[ANALYSIS_MODULE].path,
            line=1,
            message=(
                f"{SOLVER_SIGNATURE_FUNCTION} not found or reads no "
                "options field: cache keys cannot be scoped to the "
                "solver configuration"
            ),
        ))
    for name, line in sorted(fields.items()):
        if name in signed or EXEMPT_OPTION_FIELDS.get(name):
            continue
        violations.append(LintViolation(
            rule="cache-key-solver-options",
            path=modules[OPTIONS_MODULE].path,
            line=line,
            message=(
                f"AnalysisOptions.{name} is not read by "
                f"{SOLVER_SIGNATURE_FUNCTION}; two runs differing only "
                "in it would share cache entries (now across processes "
                "and runs via the persistent store). Sign it or add a "
                "justified exemption."
            ),
        ))
    defined, used = _store_schema_ok(modules[STORE_MODULE])
    if not defined:
        violations.append(LintViolation(
            rule="cache-key-solver-options",
            path=modules[STORE_MODULE].path,
            line=1,
            message=(
                "persistent store defines no module-level SCHEMA_VERSION; "
                "a format change could silently serve stale entries"
            ),
        ))
    elif not used:
        violations.append(LintViolation(
            rule="cache-key-solver-options",
            path=modules[STORE_MODULE].path,
            line=1,
            message=(
                "SCHEMA_VERSION is defined but never read; the store "
                "does not gate its contents on the schema version"
            ),
        ))
    return violations
