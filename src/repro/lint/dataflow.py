"""Flow-aware analysis core: symbol table, CFG, dataflow facts.

The PR 3 linter correlates whole trees; the rules added on top of this
module reason about *paths*: whether an ``os.fsync`` executes on every
path before an ``os.replace``, which assignments can reach the value
handed to ``cache.put``, which classes a process-pool submission can
drag across the pickle boundary. Three layers provide that:

* :class:`ProjectModel` — a symbol table over the parsed module set:
  every function/method with a stable qualified name, every class,
  every call site paired with its enclosing function. Built once per
  module mapping and shared by all flow-aware rules.
* :func:`build_cfg` — an intraprocedural control-flow graph over a
  function body. Compound statements contribute only their *header*
  expressions to a block (bodies get their own blocks), ``try``
  handlers are entered conservatively with the state at try entry,
  and loop bodies may execute zero times.
* :class:`FunctionFlow` — the two dataflow analyses the rules need:
  **reaching definitions** (which assignments/with-bindings can define
  a name at a statement; a forward may-analysis) and **must-precede
  calls** (which call expressions have executed on *every* path before
  a statement; a forward must-analysis).

Everything here is deliberately intraprocedural; interprocedural
questions (literal argument values, forwarded ``**kwargs``) live in
:mod:`repro.lint.callgraph`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.lint.engine import SourceModule


def dotted(node: ast.expr) -> str | None:
    """Render an ``a.b.c`` attribute chain; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's target; ``None`` for computed targets."""
    return dotted(call.func)


_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method with its location in the project."""

    qualname: str  #: ``module:Class.name`` or ``module:name``
    name: str
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None  #: enclosing class name, ``None`` for plain functions

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def param_names(self) -> list[str]:
        """Positional/keyword parameter names, in signature order."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]

    def kwargs_param(self) -> str | None:
        """Name of the ``**kwargs`` parameter, if any."""
        kwarg = self.node.args.kwarg
        return kwarg.arg if kwarg is not None else None

    def decorated_with(self, name: str) -> bool:
        """Whether any decorator is ``name`` or ``*.name``."""
        for deco in self.node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if isinstance(target, ast.Name) and target.id == name:
                return True
            if isinstance(target, ast.Attribute) and target.attr == name:
                return True
        return False


@dataclass(frozen=True)
class CallSite:
    """One call expression and the function (if any) containing it."""

    call: ast.Call
    enclosing: FunctionInfo | None
    module: str
    path: str


@dataclass(frozen=True)
class ClassInfo:
    """One class definition with its location in the project."""

    name: str
    module: str
    path: str
    node: ast.ClassDef


class ProjectModel:
    """Symbol table over one parsed module set.

    Attributes:
        functions: Qualified name -> :class:`FunctionInfo`.
        by_name: Bare function name -> every definition of it.
        classes: Class name -> every definition of it.
        calls: Every call expression in the project with its context.
    """

    def __init__(self, modules: Mapping[str, SourceModule]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        self.calls: list[CallSite] = []
        for module in modules.values():
            self._index_module(module)

    def _index_module(self, module: SourceModule) -> None:
        def collect(expr: ast.expr, enclosing: FunctionInfo | None) -> None:
            for node in ast.walk(expr):
                if isinstance(node, ast.Call):
                    self.calls.append(
                        CallSite(node, enclosing, module.name, module.path)
                    )

        def visit(
            nodes: list[ast.stmt],
            cls: str | None,
            enclosing: FunctionInfo | None,
        ) -> None:
            for node in nodes:
                if isinstance(node, _FUNCTION_NODES):
                    qual = node.name if cls is None else f"{cls}.{node.name}"
                    info = FunctionInfo(
                        qualname=f"{module.name}:{qual}",
                        name=node.name,
                        module=module.name,
                        path=module.path,
                        node=node,
                        cls=cls,
                    )
                    self.functions[info.qualname] = info
                    self.by_name.setdefault(node.name, []).append(info)
                    # Decorators and defaults evaluate in the enclosing
                    # scope, not inside the function being defined.
                    for expr in node.decorator_list + node.args.defaults:
                        collect(expr, enclosing)
                    for default in node.args.kw_defaults:
                        if default is not None:
                            collect(default, enclosing)
                    visit(node.body, None, info)
                elif isinstance(node, ast.ClassDef):
                    self.classes.setdefault(node.name, []).append(
                        ClassInfo(node.name, module.name, module.path, node)
                    )
                    for expr in node.decorator_list + node.bases:
                        collect(expr, enclosing)
                    visit(node.body, node.name, enclosing)
                else:
                    # Each call is collected exactly once: compound
                    # statements contribute only their header here and
                    # their bodies through the recursion below.
                    for expr in _shallow_expressions(node):
                        collect(expr, enclosing)
                    for body in _statement_bodies(node):
                        visit(body, cls, enclosing)

        visit(module.tree.body, None, None)

    def sites_calling(self, fn: FunctionInfo) -> list[CallSite]:
        """Call sites that may target ``fn``, resolved by name.

        A ``Name`` call matches same-module definitions; an
        ``x.name``/``self.name`` attribute call matches every
        definition of ``name`` anywhere (the attribute receiver is not
        type-resolved — callers must tolerate over-approximation).
        """
        sites: list[CallSite] = []
        for site in self.calls:
            func = site.call.func
            if isinstance(func, ast.Name) and func.id == fn.name:
                if site.module == fn.module:
                    sites.append(site)
            elif isinstance(func, ast.Attribute) and func.attr == fn.name:
                sites.append(site)
        return sites

    def class_named(self, name: str) -> ClassInfo | None:
        defs = self.classes.get(name)
        return defs[0] if defs else None


def _statement_bodies(node: ast.stmt) -> list[list[ast.stmt]]:
    """Statement lists nested directly inside a compound statement."""
    bodies: list[list[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        value = getattr(node, attr, None)
        if isinstance(value, list) and value and isinstance(
            value[0], ast.stmt
        ):
            bodies.append(value)
    for handler in getattr(node, "handlers", []):
        bodies.append(handler.body)
    return bodies


_MODEL_CACHE: list[tuple[Mapping[str, SourceModule], ProjectModel]] = []


def project_model(modules: Mapping[str, SourceModule]) -> ProjectModel:
    """Build (or reuse) the :class:`ProjectModel` for a module set.

    ``run_lint`` hands every rule the same mapping object; caching on
    identity lets each flow-aware rule share one symbol table.
    """
    for cached_modules, model in _MODEL_CACHE:
        if cached_modules is modules:
            return model
    model = ProjectModel(modules)
    _MODEL_CACHE.append((modules, model))
    del _MODEL_CACHE[:-4]
    return model


# ----------------------------------------------------------------------
# control-flow graph
# ----------------------------------------------------------------------
@dataclass
class Block:
    """One basic block: straight-line statements plus successor ids."""

    statements: list[ast.stmt] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)


_EXIT = -1  #: virtual exit block id used during construction


class _CfgBuilder:
    def __init__(self) -> None:
        self.blocks: list[Block] = [Block()]
        self.current = 0
        #: (continue-target, break-target) per enclosing loop
        self.loops: list[tuple[int, int]] = []

    def new_block(self) -> int:
        self.blocks.append(Block())
        return len(self.blocks) - 1

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].successors:
            self.blocks[src].successors.append(dst)

    def build(self, statements: list[ast.stmt]) -> None:
        for stmt in statements:
            if self.current == _EXIT:
                return  # unreachable code after return/raise/break
            self.statement(stmt)

    def statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self.blocks[self.current].statements.append(stmt)
            before = self.current
            join = self.new_block()
            for branch in (stmt.body, stmt.orelse):
                if not branch:
                    self.edge(before, join)
                    continue
                entry = self.new_block()
                self.edge(before, entry)
                self.current = entry
                self.build(branch)
                if self.current != _EXIT:
                    self.edge(self.current, join)
            self.current = join
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self.blocks[self.current].statements.append(stmt)
            header = self.new_block()
            self.edge(self.current, header)
            join = self.new_block()  # first block after the whole loop
            body = self.new_block()
            self.edge(header, body)
            self.loops.append((header, join))  # break skips any orelse
            self.current = body
            self.build(stmt.body)
            if self.current != _EXIT:
                self.edge(self.current, header)
            self.loops.pop()
            if stmt.orelse:
                orelse_entry = self.new_block()
                self.edge(header, orelse_entry)  # normal (non-break) exit
                self.current = orelse_entry
                self.build(stmt.orelse)
                if self.current != _EXIT:
                    self.edge(self.current, join)
            else:
                self.edge(header, join)  # zero iterations / normal exit
            self.current = join
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            # ``with`` neither branches nor (here) swallows exceptions:
            # the item expressions run, then the body, in line.
            self.blocks[self.current].statements.append(stmt)
            self.build(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.blocks[self.current].statements.append(stmt)
            before = self.current
            join = self.new_block()
            body_entry = self.new_block()
            self.edge(before, body_entry)
            self.current = body_entry
            self.build(stmt.body)
            body_exit = self.current
            if stmt.orelse and body_exit != _EXIT:
                self.build(stmt.orelse)
                body_exit = self.current
            # Handlers are entered with the facts of try *entry*: an
            # exception may fire before any body statement completes.
            handler_exits: list[int] = []
            for handler in stmt.handlers:
                entry = self.new_block()
                self.edge(before, entry)
                self.current = entry
                self.build(handler.body)
                handler_exits.append(self.current)
            if stmt.finalbody:
                final = self.new_block()
                if body_exit != _EXIT:
                    self.edge(body_exit, final)
                for exit_id in handler_exits:
                    if exit_id != _EXIT:
                        self.edge(exit_id, final)
                self.current = final
                self.build(stmt.finalbody)
                if self.current != _EXIT:
                    self.edge(self.current, join)
            else:
                if body_exit != _EXIT:
                    self.edge(body_exit, join)
                for exit_id in handler_exits:
                    if exit_id != _EXIT:
                        self.edge(exit_id, join)
            self.current = join
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[self.current].statements.append(stmt)
            self.current = _EXIT
        elif isinstance(stmt, ast.Break):
            if self.loops:
                self.edge(self.current, self.loops[-1][1])
            self.current = _EXIT
        elif isinstance(stmt, ast.Continue):
            if self.loops:
                self.edge(self.current, self.loops[-1][0])
            self.current = _EXIT
        elif isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
            # Nested definitions are opaque statements here; their
            # bodies are analysed as their own functions.
            self.blocks[self.current].statements.append(stmt)
        else:
            self.blocks[self.current].statements.append(stmt)


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[Block]:
    """Basic blocks of a function body (block 0 is the entry)."""
    builder = _CfgBuilder()
    builder.build(fn.body)
    return builder.blocks


def _shallow_expressions(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions a statement evaluates *itself* (not nested bodies).

    For compound statements only the header runs when the block
    executes the statement — ``if c:`` evaluates ``c``, the branches
    are separate blocks — so facts must come from the header alone.
    """
    if isinstance(stmt, ast.If):
        yield stmt.test
    elif isinstance(stmt, ast.While):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
    elif isinstance(stmt, ast.Try):
        return
    elif isinstance(stmt, _FUNCTION_NODES + (ast.ClassDef,)):
        return
    else:
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child


def shallow_calls(stmt: ast.stmt) -> list[ast.Call]:
    """Call expressions a statement itself evaluates."""
    calls: list[ast.Call] = []
    for expr in _shallow_expressions(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                calls.append(node)
    return calls


def _shallow_definitions(stmt: ast.stmt) -> list[tuple[str, ast.AST]]:
    """(name, value-node) pairs a statement itself binds."""
    defs: list[tuple[str, ast.AST]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in _target_names(target):
                defs.append((name, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        for name in _target_names(stmt.target):
            defs.append((name, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        for name in _target_names(stmt.target):
            defs.append((name, stmt))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in _target_names(stmt.target):
            defs.append((name, stmt.iter))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in _target_names(item.optional_vars):
                    defs.append((name, item.context_expr))
    return defs


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


class FunctionFlow:
    """Reaching definitions + must-precede calls of one function."""

    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.fn = fn
        self.cfg = build_cfg(fn)
        #: id(expression-node) -> enclosing top-level statement
        self._stmt_of: dict[int, ast.stmt] = {}
        for block in self.cfg:
            for stmt in block.statements:
                for expr in _shallow_expressions(stmt):
                    for node in ast.walk(expr):
                        self._stmt_of[id(node)] = stmt
        self._must = self._compute_must()
        self._reach = self._compute_reaching()

    # -- queries -------------------------------------------------------
    def statement_of(self, node: ast.AST) -> ast.stmt | None:
        """Top-level statement whose header evaluates ``node``."""
        return self._stmt_of.get(id(node))

    def must_precede_calls(self, stmt: ast.stmt) -> list[ast.Call]:
        """Calls executed on *every* path before ``stmt`` runs.

        Facts are keyed by the call's syntactic form, so the same
        call written in both branches of an ``if`` still counts as
        executing on every path; all nodes sharing a surviving form
        are returned.
        """
        facts = self._must.get(id(stmt))
        if facts is None:
            return []
        calls: list[ast.Call] = []
        for key in facts:
            calls.extend(self._calls_by_key[key])
        return calls

    def reaching(self, stmt: ast.stmt, name: str) -> list[ast.AST]:
        """Value nodes whose binding of ``name`` can reach ``stmt``."""
        table = self._reach.get(id(stmt), {})
        return [self._def_by_id[i] for i in table.get(name, frozenset())]

    def calls_after(self, stmt: ast.stmt) -> list[ast.Call]:
        """Calls in statements lexically after ``stmt`` in this body.

        A deliberate approximation of "on the success path": used for
        follow-up obligations (directory fsync after a rename) where
        the preceding statement already proved the happy path.
        """
        calls: list[ast.Call] = []
        for block in self.cfg:
            for other in block.statements:
                if other.lineno > stmt.lineno:
                    calls.extend(shallow_calls(other))
        return calls

    # -- analyses ------------------------------------------------------
    def _compute_must(self) -> dict[int, frozenset[str]]:
        self._calls_by_key: dict[str, list[ast.Call]] = {}
        gen: list[list[frozenset[str]]] = []
        universe: set[str] = set()
        for block in self.cfg:
            row: list[frozenset[str]] = []
            for stmt in block.statements:
                keys: set[str] = set()
                for call in shallow_calls(stmt):
                    key = ast.dump(call)
                    keys.add(key)
                    self._calls_by_key.setdefault(key, []).append(call)
                facts = frozenset(keys)
                universe.update(facts)
                row.append(facts)
            gen.append(row)

        preds: list[list[int]] = [[] for _ in self.cfg]
        for index, block in enumerate(self.cfg):
            for succ in block.successors:
                preds[succ].append(index)

        full = frozenset(universe)
        out: list[frozenset[str]] = [full] * len(self.cfg)
        out[0] = self._block_out(0, frozenset(), gen)
        changed = True
        while changed:
            changed = False
            for index in range(len(self.cfg)):
                if index == 0:
                    inset: frozenset[str] = frozenset()
                elif preds[index]:
                    inset = frozenset.intersection(
                        *(out[p] for p in preds[index])
                    )
                else:
                    inset = full  # unreachable: keep vacuous truth
                new_out = self._block_out(index, inset, gen)
                if new_out != out[index]:
                    out[index] = new_out
                    changed = True

        result: dict[int, frozenset[str]] = {}
        for index, block in enumerate(self.cfg):
            if index == 0:
                acc: frozenset[str] = frozenset()
            elif preds[index]:
                acc = frozenset.intersection(*(out[p] for p in preds[index]))
            else:
                acc = frozenset()
            for position, stmt in enumerate(block.statements):
                result[id(stmt)] = acc
                acc = acc | gen[index][position]
        return result

    @staticmethod
    def _block_out(
        index: int,
        inset: frozenset[str],
        gen: list[list[frozenset[str]]],
    ) -> frozenset[str]:
        acc = inset
        for facts in gen[index]:
            acc = acc | facts
        return acc

    def _compute_reaching(self) -> dict[int, dict[str, frozenset[int]]]:
        self._def_by_id: dict[int, ast.AST] = {}
        gen: list[list[list[tuple[str, int]]]] = []
        for block in self.cfg:
            row: list[list[tuple[str, int]]] = []
            for stmt in block.statements:
                pairs: list[tuple[str, int]] = []
                for name, value in _shallow_definitions(stmt):
                    self._def_by_id[id(value)] = value
                    pairs.append((name, id(value)))
                row.append(pairs)
            gen.append(row)

        params: dict[str, frozenset[int]] = {}
        args = self.fn.args
        for arg in (
            args.posonlyargs + args.args + args.kwonlyargs
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self._def_by_id[id(arg)] = arg
            params[arg.arg] = frozenset({id(arg)})

        def merge(
            a: dict[str, frozenset[int]], b: dict[str, frozenset[int]]
        ) -> dict[str, frozenset[int]]:
            result = dict(a)
            for name, ids in b.items():
                result[name] = result.get(name, frozenset()) | ids
            return result

        def through(
            index: int, inset: dict[str, frozenset[int]]
        ) -> dict[str, frozenset[int]]:
            acc = dict(inset)
            for pairs in gen[index]:
                for name, def_id in pairs:
                    acc[name] = frozenset({def_id})
            return acc

        preds: list[list[int]] = [[] for _ in self.cfg]
        for index, block in enumerate(self.cfg):
            for succ in block.successors:
                preds[succ].append(index)

        out: list[dict[str, frozenset[int]]] = [{} for _ in self.cfg]
        out[0] = through(0, params)
        changed = True
        while changed:
            changed = False
            for index in range(len(self.cfg)):
                if index == 0:
                    inset = dict(params)
                else:
                    inset = {}
                    for pred in preds[index]:
                        inset = merge(inset, out[pred])
                new_out = through(index, inset)
                if new_out != out[index]:
                    out[index] = new_out
                    changed = True

        result: dict[int, dict[str, frozenset[int]]] = {}
        for index, block in enumerate(self.cfg):
            if index == 0:
                acc = dict(params)
            else:
                acc = {}
                for pred in preds[index]:
                    acc = merge(acc, out[pred])
            for position, stmt in enumerate(block.statements):
                result[id(stmt)] = dict(acc)
                for name, def_id in gen[index][position]:
                    acc[name] = frozenset({def_id})
        return result
