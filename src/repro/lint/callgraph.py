"""Call-graph construction and interprocedural literal resolution.

The trace-contract rule must know which *event names* reach the
observability sinks, but two of the hottest emitters pass computed
names — ``obs.emit(f"cache.{name}", ...)`` inside
:meth:`repro.analysis.cache.AnalysisCache.bump` and
``obs.emit(f"fault.{site}", ...)`` inside
:meth:`repro.faults.injection.Injection.fire` — where the dynamic part
is a plain function parameter. Those resolve exactly: enumerate the
call sites of the enclosing function (via the
:class:`~repro.lint.dataflow.ProjectModel` symbol table), substitute
each site's literal argument, and recurse through forwarding wrappers
(the module-level ``fire()`` forwards ``site`` into the method; the
runner's local ``emit()`` closure forwards ``name`` into the writer).

:func:`resolve_string_values` implements that substitution for string
expressions (constants, two-armed conditionals, f-strings over
parameters, forwarded parameters); :func:`resolve_keyword_keys` does
the same for ``**kwargs`` forwarding so payload *keys* survive one
level of indirection too. Both are over-approximations: they return
every value any call site can produce, plus an ``unresolved`` flag
when some production could not be traced to a literal — rules then
emit a warning instead of guessing.
"""

from __future__ import annotations

import ast

from repro.lint.dataflow import CallSite, FunctionInfo, ProjectModel

#: Recursion bound for forwarding chains (wrapper -> wrapper -> ...).
MAX_DEPTH = 4


def positional_index(fn: FunctionInfo, param: str) -> int | None:
    """Index of ``param`` in calls to ``fn`` written as ``fn(a, b)``.

    For methods called as ``obj.m(a, b)`` the bound receiver consumes
    the first parameter, so the caller-side index shifts down by one.
    """
    params = fn.param_names()
    if param not in params:
        return None
    return params.index(param)


def argument_for(
    site: CallSite, fn: FunctionInfo, param: str
) -> ast.expr | None:
    """The expression ``site`` passes for ``fn``'s ``param``, if any."""
    index = positional_index(fn, param)
    if index is None:
        return None
    if fn.is_method and isinstance(site.call.func, ast.Attribute):
        index -= 1  # ``obj.m(...)``: the receiver fills ``self``
    for keyword in site.call.keywords:
        if keyword.arg == param:
            return keyword.value
    if 0 <= index < len(site.call.args):
        arg = site.call.args[index]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


class Resolution:
    """Accumulator for one interprocedural resolution."""

    def __init__(self) -> None:
        self.values: set[str] = set()
        self.unresolved: list[CallSite] = []

    @property
    def complete(self) -> bool:
        return not self.unresolved


def resolve_string_values(
    expr: ast.expr,
    enclosing: FunctionInfo | None,
    model: ProjectModel,
    depth: int = MAX_DEPTH,
    _seen: frozenset[str] = frozenset(),
) -> Resolution:
    """Every string value ``expr`` can take, following parameters.

    Handles: string constants; ``a if c else b`` (both arms);
    f-strings whose formatted parts each resolve; names that are
    parameters of ``enclosing`` (resolved through its call sites).
    Anything else lands in ``unresolved``.
    """
    result = Resolution()
    _resolve_into(expr, enclosing, model, depth, _seen, result)
    return result


def _resolve_into(
    expr: ast.expr,
    enclosing: FunctionInfo | None,
    model: ProjectModel,
    depth: int,
    seen: frozenset[str],
    result: Resolution,
) -> None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        result.values.add(expr.value)
        return
    if isinstance(expr, ast.IfExp):
        _resolve_into(expr.body, enclosing, model, depth, seen, result)
        _resolve_into(expr.orelse, enclosing, model, depth, seen, result)
        return
    if isinstance(expr, ast.JoinedStr):
        _resolve_fstring(expr, enclosing, model, depth, seen, result)
        return
    if (
        isinstance(expr, ast.Name)
        and enclosing is not None
        and expr.id in enclosing.param_names()
    ):
        _resolve_parameter(
            enclosing, expr.id, model, depth, seen, result,
            at=_site_placeholder(expr, enclosing),
        )
        return
    result.unresolved.append(_site_placeholder(expr, enclosing))


def _site_placeholder(
    expr: ast.expr, enclosing: FunctionInfo | None
) -> CallSite:
    """Wrap a non-call expression as a :class:`CallSite` for reporting."""
    call = expr if isinstance(expr, ast.Call) else ast.Call(
        func=expr, args=[], keywords=[]
    )
    if not hasattr(call, "lineno"):
        ast.copy_location(call, expr)
    module = enclosing.module if enclosing is not None else "<module>"
    path = enclosing.path if enclosing is not None else "<unknown>"
    return CallSite(call=call, enclosing=enclosing, module=module, path=path)


def _resolve_fstring(
    expr: ast.JoinedStr,
    enclosing: FunctionInfo | None,
    model: ProjectModel,
    depth: int,
    seen: frozenset[str],
    result: Resolution,
) -> None:
    """Resolve an f-string by resolving each formatted part."""
    part_values: list[list[str]] = []
    for part in expr.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            part_values.append([part.value])
        elif isinstance(part, ast.FormattedValue):
            inner = resolve_string_values(
                part.value, enclosing, model, depth, seen
            )
            if not inner.complete or not inner.values:
                result.unresolved.append(
                    _site_placeholder(expr, enclosing)
                )
                return
            part_values.append(sorted(inner.values))
        else:
            result.unresolved.append(_site_placeholder(expr, enclosing))
            return
    combos = [""]
    for values in part_values:
        combos = [prefix + value for prefix in combos for value in values]
    result.values.update(combos)


def _resolve_parameter(
    fn: FunctionInfo,
    param: str,
    model: ProjectModel,
    depth: int,
    seen: frozenset[str],
    result: Resolution,
    at: CallSite,
) -> None:
    """Resolve a parameter through every call site of ``fn``."""
    key = f"{fn.qualname}:{param}"
    if key in seen:
        # A forwarding cycle (wrapper passing the parameter back into
        # the chain). Name-based site matching already enumerated the
        # cycle's outside callers on the first visit, so the cycle
        # itself contributes nothing new — skip it silently.
        return
    if depth <= 0:
        result.unresolved.append(at)
        return
    sites = model.sites_calling(fn)
    if not sites:
        result.unresolved.append(at)
        return
    for site in sites:
        arg = argument_for(site, fn, param)
        if arg is None:
            result.unresolved.append(site)
            continue
        _resolve_into(
            arg, site.enclosing, model, depth - 1, seen | {key}, result
        )


def resolve_keyword_keys(
    call: ast.Call,
    enclosing: FunctionInfo | None,
    model: ProjectModel,
    depth: int = MAX_DEPTH,
    _seen: frozenset[str] = frozenset(),
) -> Resolution:
    """Every keyword-argument *name* a call can pass.

    Literal keywords contribute their names; ``**fields`` where
    ``fields`` is the enclosing function's ``**kwargs`` parameter is
    resolved through that function's call sites (their extra keywords
    — the ones not captured by a named parameter — are what the
    dictionary forwards). Other ``**`` expansions are unresolved.
    """
    result = Resolution()
    for keyword in call.keywords:
        if keyword.arg is not None:
            result.values.add(keyword.arg)
            continue
        value = keyword.value
        if (
            isinstance(value, ast.Name)
            and enclosing is not None
            and value.id == enclosing.kwargs_param()
        ):
            _resolve_forwarded_kwargs(
                enclosing, model, depth, _seen, result
            )
        else:
            result.unresolved.append(
                CallSite(
                    call=call,
                    enclosing=enclosing,
                    module=enclosing.module if enclosing else "<module>",
                    path=enclosing.path if enclosing else "<unknown>",
                )
            )
    return result


def _resolve_forwarded_kwargs(
    fn: FunctionInfo,
    model: ProjectModel,
    depth: int,
    seen: frozenset[str],
    result: Resolution,
) -> None:
    key = f"{fn.qualname}:**"
    if key in seen:
        return  # forwarding cycle: outside callers already enumerated
    if depth <= 0:
        result.unresolved.append(
            CallSite(
                call=ast.Call(func=ast.Name(id=fn.name), args=[], keywords=[]),
                enclosing=fn,
                module=fn.module,
                path=fn.path,
            )
        )
        return
    named = set(fn.param_names())
    for site in model.sites_calling(fn):
        for keyword in site.call.keywords:
            if keyword.arg is not None:
                if keyword.arg not in named:
                    result.values.add(keyword.arg)
                continue
            inner = keyword.value
            if (
                isinstance(inner, ast.Name)
                and site.enclosing is not None
                and inner.id == site.enclosing.kwargs_param()
            ):
                _resolve_forwarded_kwargs(
                    site.enclosing, model, depth - 1, seen | {key}, result
                )
            else:
                result.unresolved.append(site)
