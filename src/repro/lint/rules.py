"""Per-module AST rules: mutable defaults and float time equality."""

from __future__ import annotations

import ast
from typing import Iterator, Mapping

from repro.lint.engine import LintViolation, SourceModule

#: Identifiers whose values are time-valued floats in this codebase
#: (windows, response times, phase durations, objectives). Exact
#: ``==``/``!=`` on any of them compares iterated floating-point
#: results and must go through a tolerance instead.
TIME_VALUED_NAMES = frozenset({
    "window",
    "wcrt",
    "response",
    "new_response",
    "deadline",
    "period",
    "exec_time",
    "copy_in",
    "copy_out",
    "total_cost",
    "elapsed",
    "elapsed_seconds",
    "objective",
    "slack",
    "horizon",
    "release_time",
    "finish_time",
    "start_time",
    "arrival_time",
})

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

#: Methods whose bodies legitimately compare parameters exactly:
#: they *define* value identity (dataclass-style semantics), they do
#: not test convergence of computed quantities.
_IDENTITY_METHODS = frozenset({"__eq__", "__ne__", "__hash__"})


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def mutable_default_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Flag ``def f(x=[])``-style defaults: one object, every call."""
    violations: list[LintViolation] = []
    for module in modules.values():
        for func in _functions(module.tree):
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(default, _MUTABLE_LITERALS) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in _MUTABLE_CALLS
                )
                if mutable:
                    label = getattr(func, "name", "<lambda>")
                    violations.append(LintViolation(
                        rule="mutable-default-argument",
                        path=module.path,
                        line=default.lineno,
                        message=(
                            f"{label}: mutable default argument is shared "
                            "across calls; use None and create inside"
                        ),
                    ))
    return violations


def _is_time_valued(node: ast.expr) -> str | None:
    """The time-valued identifier an operand reads, if any."""
    if isinstance(node, ast.Name) and node.id in TIME_VALUED_NAMES:
        return node.id
    if isinstance(node, ast.Attribute) and node.attr in TIME_VALUED_NAMES:
        return node.attr
    return None


def float_time_equality_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Flag ``==``/``!=`` where either side is a time-valued float."""
    violations: list[LintViolation] = []
    for module in modules.values():
        exempt_ranges: list[tuple[int, int]] = []
        for func in _functions(module.tree):
            if getattr(func, "name", "") in _IDENTITY_METHODS:
                exempt_ranges.append(
                    (func.lineno, func.end_lineno or func.lineno)
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            if any(lo <= node.lineno <= hi for lo, hi in exempt_ranges):
                continue
            for operand in [node.left, *node.comparators]:
                name = _is_time_valued(operand)
                if name is not None:
                    violations.append(LintViolation(
                        rule="float-time-equality",
                        path=module.path,
                        line=node.lineno,
                        message=(
                            f"exact ==/!= on time-valued float {name!r}; "
                            "compare with a tolerance (convergence_eps / "
                            "pytest.approx) instead"
                        ),
                    ))
                    break
    return violations
