"""Trace-event contract checker (the ``trace-contract`` rule).

PR 4 made traces a load-bearing artifact: the profiler reconciles
``cache.*`` sums against checkpoint stats, CI schema-validates every
line, and chaos tests assert on event payloads. Nothing, however,
tied the *call sites* to the contract — renaming an event, dropping a
payload key, or adding a counter nobody aggregates would ship
silently. This rule closes the loop statically:

* every ``emit()``/``span()`` call site in ``src/repro`` is resolved
  to its possible event names — through literal strings, two-armed
  conditionals, and f-strings over parameters substituted via the
  call graph (``AnalysisCache.bump`` -> ``cache.*``,
  ``Injection.fire`` -> ``fault.*``) — and diffed against
  :data:`repro.obs.events.EVENT_NAMES` (carried inside
  ``EVENT_SCHEMA["definitions"]["events"]``);
* payload keys (keyword arguments beyond the envelope, including
  forwarded ``**kwargs``) must be declared for some resolvable name,
  and literal payload values must match the declared type;
* catalogue entries nothing can emit are flagged as dead schema;
* event names that cannot be resolved at all produce a *warning*
  (fails only ``--strict``), never a crash and never silence;
* every observability sink named ``emit`` in :data:`OBS_MODULE` must
  accept the full envelope (``dur``/``task``/``point``/``unit``) so
  correlation ids can never leak into the ``f`` payload;
* counter completeness: every name passed to ``bump()`` must appear
  in ``COUNTER_NAMES`` (the only counters ``stats()`` surfaces and
  ``render_sweep_table``/``repro profile`` aggregate), every declared
  counter must be bumped somewhere, each must have a ``cache.<name>``
  catalogue entry, and ``render_sweep_table`` must still call
  ``aggregate_analysis_stats``.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.lint.callgraph import (
    resolve_keyword_keys,
    resolve_string_values,
)
from repro.lint.dataflow import CallSite, ProjectModel, project_model
from repro.lint.engine import LintViolation, SourceModule

#: Module defining the event schema, catalogue, and emit sinks.
OBS_MODULE = "repro.obs.events"
#: Module defining the analysis-stats counters.
CACHE_MODULE = "repro.analysis.cache"
#: Module whose ``render_sweep_table`` surfaces the aggregated stats.
REPORT_MODULE = "repro.experiments.report"

#: Envelope keywords of ``emit`` sinks: stamped as top-level record
#: fields, never part of the ``f`` payload.
EMIT_ENVELOPE = frozenset({"dur", "task", "point", "unit"})
#: ``span`` accepts only ``task``; its duration is measured, not passed.
SPAN_ENVELOPE = frozenset({"task"})

RULE = "trace-contract"


def _violation(
    path: str, line: int, message: str, severity: str = "error"
) -> LintViolation:
    return LintViolation(
        rule=RULE, path=path, line=line, message=message, severity=severity
    )


def first_positional_or_keyword(call: ast.Call, name: str) -> ast.expr | None:
    """The first positional argument, or the keyword ``name=``."""
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    if call.args and not isinstance(call.args[0], ast.Starred):
        return call.args[0]
    return None


def _literal_assignment(
    module: SourceModule, name: str
) -> tuple[object, int] | None:
    """``(value, line)`` of a module-level literal assignment."""
    for node in module.tree.body:
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        value = getattr(node, "value", None)
        if value is None:
            return None
        try:
            return ast.literal_eval(value), node.lineno
        except ValueError:
            return None
    return None


def event_catalogue(
    obs_module: SourceModule,
) -> tuple[dict[str, dict[str, str]] | None, int]:
    """The ``EVENT_NAMES`` payload catalogue parsed from source."""
    found = _literal_assignment(obs_module, "EVENT_NAMES")
    if found is None:
        return None, 1
    value, line = found
    if not isinstance(value, dict):
        return None, line
    catalogue: dict[str, dict[str, str]] = {}
    for name, payload in value.items():
        if not isinstance(name, str) or not isinstance(payload, dict):
            return None, line
        catalogue[name] = {str(k): str(v) for k, v in payload.items()}
    return catalogue, line


def _is_emit_call(site: CallSite) -> str | None:
    """``"emit"``/``"span"`` when a call site targets a trace sink."""
    func = site.call.func
    name: str | None = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name if name in ("emit", "span") else None


def _constant_matches(value: object, declared: str) -> bool:
    """Whether a literal payload value satisfies a declared type."""
    optional = declared.endswith("?")
    base = declared[:-1] if optional else declared
    if value is None:
        return optional or base == "any"
    if base == "any":
        return True
    if isinstance(value, bool):
        return base == "bool"
    if isinstance(value, int):
        return base in ("int", "number")
    if isinstance(value, float):
        return base == "number"
    if isinstance(value, str):
        return base == "str"
    return True  # containers etc.: not checked statically


def trace_contract_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Cross-check every static emit/span site against the catalogue."""
    if OBS_MODULE not in modules:
        return [_violation(
            "<module set>", 0,
            f"cannot check: module {OBS_MODULE} not in the lint set",
        )]
    obs_module = modules[OBS_MODULE]
    catalogue, catalogue_line = event_catalogue(obs_module)
    if catalogue is None:
        return [_violation(
            obs_module.path, catalogue_line,
            "EVENT_NAMES catalogue missing or not a literal "
            "{name: {key: type}} dict; the trace contract cannot anchor",
        )]

    model = project_model(modules)
    violations: list[LintViolation] = []
    emitted_names: set[str] = set()

    for site in model.calls:
        kind = _is_emit_call(site)
        if kind is None or site.module == OBS_MODULE:
            continue
        name_arg = first_positional_or_keyword(site.call, "name")
        if name_arg is None:
            violations.append(_violation(
                site.path, site.call.lineno,
                f"{kind}() call passes no event name", "warning",
            ))
            continue
        resolved = resolve_string_values(name_arg, site.enclosing, model)
        if not resolved.complete or not resolved.values:
            violations.append(_violation(
                site.path, site.call.lineno,
                f"dynamic {kind}() event name cannot be resolved to "
                "string literals; resolved candidates: "
                f"{sorted(resolved.values) or 'none'}", "warning",
            ))
        emitted_names.update(resolved.values)
        allowed: dict[str, str] = {}
        for name in sorted(resolved.values):
            if name not in catalogue:
                violations.append(_violation(
                    site.path, site.call.lineno,
                    f"event {name!r} is emitted but not in EVENT_NAMES "
                    f"({OBS_MODULE}); catalogue it or rename the emit",
                ))
            else:
                for key, declared in catalogue[name].items():
                    allowed.setdefault(key, declared)
        if not resolved.values or not allowed and not any(
            name in catalogue for name in resolved.values
        ):
            continue  # name-level findings already cover this site
        envelope = EMIT_ENVELOPE if kind == "emit" else SPAN_ENVELOPE
        keys = resolve_keyword_keys(site.call, site.enclosing, model)
        if not keys.complete:
            violations.append(_violation(
                site.path, site.call.lineno,
                f"cannot resolve forwarded ** payload of this {kind}() "
                "call; payload keys unchecked", "warning",
            ))
        for key in sorted(keys.values - envelope):
            if key not in allowed:
                violations.append(_violation(
                    site.path, site.call.lineno,
                    f"payload key {key!r} is not declared for "
                    f"{sorted(n for n in resolved.values if n in catalogue)}"
                    " in EVENT_NAMES; declare it or drop it",
                ))
        for keyword in site.call.keywords:
            if (
                keyword.arg is None
                or keyword.arg in envelope
                or keyword.arg not in allowed
            ):
                continue
            if isinstance(keyword.value, ast.Constant):
                if not _constant_matches(
                    keyword.value.value, allowed[keyword.arg]
                ):
                    violations.append(_violation(
                        site.path, site.call.lineno,
                        f"payload key {keyword.arg!r} has literal "
                        f"{keyword.value.value!r} but EVENT_NAMES "
                        f"declares type {allowed[keyword.arg]!r}",
                    ))

    for name in sorted(set(catalogue) - emitted_names):
        violations.append(_violation(
            obs_module.path, catalogue_line,
            f"dead schema entry: EVENT_NAMES declares {name!r} but no "
            "static emit/span site can produce it",
        ))

    violations.extend(_check_sink_signatures(obs_module))
    violations.extend(_check_counters(modules, model, catalogue))
    return violations


def _check_sink_signatures(obs_module: SourceModule) -> list[LintViolation]:
    """Every ``emit`` sink must accept the full envelope."""
    violations: list[LintViolation] = []
    for node in ast.walk(obs_module.tree):
        if not isinstance(node, ast.FunctionDef) or node.name != "emit":
            continue
        params = {
            a.arg
            for a in node.args.posonlyargs + node.args.args
            + node.args.kwonlyargs
        }
        missing = sorted(EMIT_ENVELOPE - params)
        if missing:
            violations.append(_violation(
                obs_module.path, node.lineno,
                f"emit sink does not accept envelope parameter(s) "
                f"{missing}: callers passing them would silently bury "
                "correlation ids inside the f payload",
            ))
    return violations


def _check_counters(
    modules: Mapping[str, SourceModule],
    model: ProjectModel,
    catalogue: dict[str, dict[str, str]],
) -> list[LintViolation]:
    """analysis_stats counter completeness (bump <-> aggregate)."""
    violations: list[LintViolation] = []
    if CACHE_MODULE not in modules:
        return [_violation(
            "<module set>", 0,
            f"cannot check counters: module {CACHE_MODULE} missing",
        )]
    cache_module = modules[CACHE_MODULE]
    found = _literal_assignment(cache_module, "COUNTER_NAMES")
    if found is None or not isinstance(found[0], (tuple, list)):
        return [_violation(
            cache_module.path, 1,
            "COUNTER_NAMES missing or not a literal tuple; counter "
            "completeness cannot anchor",
        )]
    counters = [str(name) for name in found[0]]
    counters_line = found[1]

    bumped: set[str] = set()
    for site in model.calls:
        func = site.call.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "bump":
            continue
        arg = first_positional_or_keyword(site.call, "name")
        if arg is None:
            continue
        resolved = resolve_string_values(arg, site.enclosing, model)
        for value in sorted(resolved.values):
            bumped.add(value)
            if value not in counters:
                violations.append(_violation(
                    site.path, site.call.lineno,
                    f"counter {value!r} is bumped but not in "
                    "COUNTER_NAMES: stats() never surfaces it and no "
                    "report aggregates it",
                ))
    for name in counters:
        if name not in bumped:
            violations.append(_violation(
                cache_module.path, counters_line,
                f"dead counter: COUNTER_NAMES declares {name!r} but "
                "nothing bumps it",
            ))
        if f"cache.{name}" not in catalogue:
            violations.append(_violation(
                cache_module.path, counters_line,
                f"counter {name!r} has no 'cache.{name}' entry in "
                "EVENT_NAMES; its bump events would violate the trace "
                "contract",
            ))

    report = modules.get(REPORT_MODULE)
    if report is None:
        violations.append(_violation(
            "<module set>", 0,
            f"cannot check aggregation: module {REPORT_MODULE} missing",
        ))
        return violations
    aggregates = False
    for node in ast.walk(report.tree):
        if isinstance(node, ast.FunctionDef) and node.name == "render_sweep_table":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    target = func.id if isinstance(func, ast.Name) else (
                        func.attr if isinstance(func, ast.Attribute) else ""
                    )
                    if target == "aggregate_analysis_stats":
                        aggregates = True
    if not aggregates:
        violations.append(_violation(
            report.path, 1,
            "render_sweep_table no longer calls aggregate_analysis_stats; "
            "analysis_stats counters would go unreported",
        ))
    return violations
