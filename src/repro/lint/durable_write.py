"""Durable-write discipline (the ``durable-write`` rule).

PR 5's crash-consistency tests prove the checkpoint protocol durable
*dynamically*; this rule pins the protocol *statically* so a
refactoring cannot quietly drop a sync. For every ``os.replace(src,
dst)`` in the project the rule demands a dataflow proof of the full
temp-write → fsync(file) → rename → fsync(dir) sequence:

* on **every** control-flow path reaching the rename there must be an
  ``os.fsync(h.fileno())`` (or ``os.fsync(fd)``) whose handle's
  reaching definition is an ``open``/``os.open`` of the *same name*
  the rename moves — otherwise a crash after the rename can publish a
  file whose data blocks never left the page cache;
* after the rename (lexically, on the success path) some call must
  sync the containing directory — either ``os.fsync`` directly or a
  helper whose body performs one (this resolves
  ``_fsync_directory``) — otherwise the rename itself is the thing
  the crash forgets.

Shapes the analysis cannot decide (a computed source path, a rename
outside any function) produce *warnings*, not silent passes: the
author either rewrites into the provable shape or consciously
baselines the finding.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.lint.dataflow import (
    FunctionFlow,
    ProjectModel,
    call_name,
    project_model,
)
from repro.lint.engine import LintViolation, SourceModule

RULE = "durable-write"


def _violation(
    path: str, line: int, message: str, severity: str = "error"
) -> LintViolation:
    return LintViolation(
        rule=RULE, path=path, line=line, message=message, severity=severity
    )


def _is_open_of(def_node: ast.AST, source: str) -> bool:
    """Whether a reaching definition opens the file named ``source``."""
    if not isinstance(def_node, ast.Call):
        return False
    name = call_name(def_node)
    if name not in ("open", "os.open", "io.open"):
        return False
    return bool(
        def_node.args
        and isinstance(def_node.args[0], ast.Name)
        and def_node.args[0].id == source
    )


def _fsync_covers_source(
    call: ast.Call, flow: FunctionFlow, source: str
) -> bool:
    """Whether one ``os.fsync(...)`` call provably syncs ``source``."""
    if call_name(call) != "os.fsync" or not call.args:
        return False
    arg = call.args[0]
    stmt = flow.statement_of(call)
    if stmt is None:
        return False
    # ``os.fsync(handle.fileno())`` — trace the handle.
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Attribute)
        and arg.func.attr == "fileno"
        and isinstance(arg.func.value, ast.Name)
    ):
        handle = arg.func.value.id
        return any(
            _is_open_of(d, source) for d in flow.reaching(stmt, handle)
        )
    # ``os.fsync(fd)`` — trace the descriptor.
    if isinstance(arg, ast.Name):
        return any(
            _is_open_of(d, source) for d in flow.reaching(stmt, arg.id)
        )
    return False


def _syncs_a_directory(call: ast.Call, model: ProjectModel) -> bool:
    """Whether a post-rename call performs (or wraps) a directory sync."""
    name = call_name(call)
    if name is None:
        return False
    if name == "os.fsync":
        return True
    bare = name.rsplit(".", 1)[-1]
    for fn in model.by_name.get(bare, []):
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and call_name(node) == "os.fsync":
                return True
    return False


def durable_write_rule(
    modules: Mapping[str, SourceModule],
) -> list[LintViolation]:
    """Prove fsync-before-rename and dirsync-after-rename everywhere."""
    model = project_model(modules)
    violations: list[LintViolation] = []
    flows: dict[str, FunctionFlow] = {}

    for site in model.calls:
        if call_name(site.call) != "os.replace":
            continue
        line = site.call.lineno
        if site.enclosing is None:
            violations.append(_violation(
                site.path, line,
                "os.replace at module level cannot be checked for "
                "fsync discipline", "warning",
            ))
            continue
        flow = flows.get(site.enclosing.qualname)
        if flow is None:
            flow = FunctionFlow(site.enclosing.node)
            flows[site.enclosing.qualname] = flow
        stmt = flow.statement_of(site.call)
        if stmt is None:
            violations.append(_violation(
                site.path, line,
                "os.replace nested in a non-statement position; fsync "
                "discipline cannot be checked", "warning",
            ))
            continue
        if not site.call.args or not isinstance(
            site.call.args[0], ast.Name
        ):
            violations.append(_violation(
                site.path, line,
                "os.replace source is not a plain name; bind the temp "
                "path to a local so the fsync proof can anchor",
                "warning",
            ))
            continue
        source = site.call.args[0].id
        if not any(
            _fsync_covers_source(call, flow, source)
            for call in flow.must_precede_calls(stmt)
        ):
            violations.append(_violation(
                site.path, line,
                f"os.replace({source}, ...) is not preceded on every "
                f"path by os.fsync of a handle opened on {source!r}: a "
                "crash after the rename can publish unsynced data",
            ))
        if not any(
            _syncs_a_directory(call, model)
            for call in flow.calls_after(stmt)
        ):
            violations.append(_violation(
                site.path, line,
                "no directory fsync follows this os.replace: a crash "
                "can forget the rename itself",
            ))
    return violations
