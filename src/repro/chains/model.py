"""Chain model: an ordered pipeline of tasks from one task set."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.model.task import Task
from repro.model.taskset import TaskSet


@dataclass(frozen=True)
class TaskChain:
    """A cause-effect chain ``stage_0 -> stage_1 -> ... -> stage_k``.

    Stages are tasks of one per-core task set, communicating through
    global memory: a stage's copy-out publishes its output, the next
    stage's copy-in samples whatever is published at that moment
    (register/LET-style asynchronous communication — no release
    synchronisation between stages).

    Attributes:
        name: Chain identifier (for reports).
        taskset: The task set the stages belong to.
        stage_names: Task names in data-flow order; at least two,
            no repeats (a task reading its own output is a cycle, not
            a chain).
    """

    name: str
    taskset: TaskSet
    stage_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.stage_names) < 2:
            raise ModelError(f"chain {self.name!r} needs at least two stages")
        if len(set(self.stage_names)) != len(self.stage_names):
            raise ModelError(f"chain {self.name!r} repeats a stage")
        for stage in self.stage_names:
            self.taskset.by_name(stage)  # raises ModelError if unknown

    @property
    def stages(self) -> tuple[Task, ...]:
        """The stage tasks, in data-flow order."""
        return tuple(self.taskset.by_name(n) for n in self.stage_names)

    def __len__(self) -> int:
        return len(self.stage_names)

    def __repr__(self) -> str:
        return f"TaskChain({self.name!r}: {' -> '.join(self.stage_names)})"
