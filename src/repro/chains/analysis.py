"""End-to-end latency bounds for asynchronous task chains.

With register-based asynchronous communication, a fresh input arriving
just after stage 0's release is first processed by stage 0's *next*
job, and each subsequent stage samples at its own pace. The classic
safe composition (Davare et al., DAC 2007) bounds the worst-case
**reaction time** by

    sum over stages of (T_i + R_i)

where ``T_i`` is the stage's period (sampling delay: the data may just
miss a release) and ``R_i`` its worst-case response time under the
protocol being analysed. The **data age** (how old an output's
originating input can be) has the same structure for register chains.

The bound is protocol-agnostic: plug in per-task WCRTs from the NPS,
protocol-[3], or proposed-protocol analyses — the paper's eager
copy-out (R2) is what makes the per-task WCRT the correct publication
instant under the proposed protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.interface import TaskSetResult
from repro.chains.model import TaskChain
from repro.errors import AnalysisError
from repro.types import Time


@dataclass(frozen=True)
class ChainBound:
    """A chain latency bound plus its per-stage decomposition.

    Attributes:
        chain: The analysed chain.
        total: The end-to-end bound (``inf`` if any stage's WCRT is).
        per_stage: ``stage name -> (period, wcrt)`` contributions.
    """

    chain: TaskChain
    total: Time
    per_stage: Mapping[str, tuple[Time, Time]]

    def __repr__(self) -> str:
        return f"ChainBound({self.chain.name!r}, total={self.total:.3f})"


def _stage_wcrts(
    chain: TaskChain, result: TaskSetResult
) -> dict[str, Time]:
    if result.taskset != chain.taskset:
        raise AnalysisError(
            "the analysis result belongs to a different task set than the chain"
        )
    return {name: result.result_for(name).wcrt for name in chain.stage_names}


def chain_reaction_bound(
    chain: TaskChain, result: TaskSetResult
) -> ChainBound:
    """Worst-case reaction time of the chain (Davare composition).

    Args:
        chain: The chain to bound.
        result: A per-task analysis of the chain's task set under the
            protocol of interest (e.g. from
            :func:`repro.analysis.analyze_taskset`).
    """
    wcrts = _stage_wcrts(chain, result)
    per_stage: dict[str, tuple[Time, Time]] = {}
    total: Time = 0.0
    for task in chain.stages:
        wcrt = wcrts[task.name]
        per_stage[task.name] = (task.period, wcrt)
        total += task.period + wcrt
    if any(math.isinf(w) for _, w in per_stage.values()):
        total = math.inf
    return ChainBound(chain=chain, total=total, per_stage=per_stage)


def chain_data_age_bound(
    chain: TaskChain, result: TaskSetResult
) -> ChainBound:
    """Worst-case data age of the chain's output.

    For register-based chains the maximum age adds one extra period of
    the *last* stage on top of the reaction bound: the output register
    keeps serving a value until the stage's next job overwrites it.
    """
    reaction = chain_reaction_bound(chain, result)
    last = chain.stages[-1]
    return ChainBound(
        chain=chain,
        total=reaction.total + last.period,
        per_stage=reaction.per_stage,
    )
