"""Task chains: end-to-end latency on top of the per-task analyses.

The paper's rule R2 performs copy-outs eagerly precisely so the
protocol "allows extending ... to the case of communicating tasks
(e.g., for data-driven task chains)", which the authors leave as future
work (Sec. IV-A). This package provides that extension in its standard
asynchronous form: chains of periodically-activated tasks communicating
through global-memory registers (the producer's copy-out publishes, the
consumer's next copy-in samples), with

* a worst-case *reaction-time* bound composed from the per-task WCRTs
  (Davare-style: the event waits for the first task's next release,
  then each hop adds one sampling period plus one response time), and
* a trace-based measurement that follows actual data propagation
  through a simulated schedule, used to validate the bound.
"""

from repro.chains.model import TaskChain
from repro.chains.analysis import chain_reaction_bound, chain_data_age_bound
from repro.chains.measurement import measure_reaction_times

__all__ = [
    "TaskChain",
    "chain_reaction_bound",
    "chain_data_age_bound",
    "measure_reaction_times",
]
