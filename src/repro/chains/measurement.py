"""Trace-based chain latency measurement.

Follows actual data propagation through a simulated schedule: an input
sample arrives at an arbitrary instant, is picked up by the first
stage's next job (its copy-in reads the freshest published input), and
each completed stage publishes at its copy-out completion. The worst
measured reaction time over a trace is a *lower* bound witness for the
analytic chain bound — the property tests assert measurement <= bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chains.model import TaskChain
from repro.errors import SimulationError
from repro.sim.trace import Job, Trace
from repro.types import TIME_EPS, Time


@dataclass(frozen=True)
class ReactionSample:
    """One measured end-to-end reaction.

    Attributes:
        input_time: When the external input arrived.
        completion_time: When the last stage published the result.
        path: The job names that carried the data, stage by stage.
    """

    input_time: Time
    completion_time: Time
    path: tuple[str, ...]

    @property
    def latency(self) -> Time:
        return self.completion_time - self.input_time


def _first_job_sampling_after(jobs: list[Job], instant: Time) -> Job | None:
    """The first job whose *data sampling* happens at/after ``instant``.

    A job samples its inputs when its copy-in starts (for urgent tasks
    the CPU performs the copy-in, same instant semantics). Jobs whose
    copy-in started before the input arrived carry stale data.
    """
    candidates = [
        j
        for j in jobs
        if j.completed
        and j.copy_in_start is not None
        and j.copy_in_start >= instant - TIME_EPS
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda j: j.copy_in_start)


def measure_reaction_times(
    chain: TaskChain,
    trace: Trace,
    input_times: list[Time] | None = None,
) -> list[ReactionSample]:
    """Measure end-to-end reactions through a trace.

    Args:
        chain: The chain whose stages to follow.
        trace: A completed simulation trace of the chain's task set.
        input_times: External input instants; defaults to "just after
            every release of the first stage" — the adversarial choice
            (the input barely misses a sampling opportunity).

    Returns:
        One sample per input that completed within the trace.
    """
    stage_jobs = {
        name: [j for j in trace.jobs_of(name) if j.completed]
        for name in chain.stage_names
    }
    for name, jobs in stage_jobs.items():
        if not jobs:
            raise SimulationError(
                f"trace contains no completed job of chain stage {name!r}"
            )

    if input_times is None:
        first = chain.stage_names[0]
        input_times = [
            j.release + 10 * TIME_EPS for j in stage_jobs[first]
        ]

    samples: list[ReactionSample] = []
    for input_time in input_times:
        instant = input_time
        path: list[str] = []
        completed = True
        for name in chain.stage_names:
            job = _first_job_sampling_after(stage_jobs[name], instant)
            if job is None:
                completed = False
                break
            path.append(job.name)
            instant = job.copy_out_end  # publication instant
        if completed:
            samples.append(
                ReactionSample(
                    input_time=input_time,
                    completion_time=instant,
                    path=tuple(path),
                )
            )
    return samples


def max_reaction_time(
    chain: TaskChain, trace: Trace
) -> Time:
    """Largest measured reaction latency (``-inf`` if none completed)."""
    samples = measure_reaction_times(chain, trace)
    if not samples:
        return float("-inf")
    return max(s.latency for s in samples)
