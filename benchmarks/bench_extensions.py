"""Benchmarks for the extension modules (beyond the paper's figures).

Covers the future-work/auxiliary systems DESIGN.md lists: task-chain
latency bounds vs measured data propagation, sensitivity bisection,
adversarial worst-case search, and Audsley's OPA with the proposed
analysis as oracle.
"""

import numpy as np
import pytest

from repro.analysis.schedulability import analyze_taskset
from repro.analysis.sensitivity import critical_scaling_factor
from repro.chains import TaskChain, chain_reaction_bound
from repro.chains.measurement import max_reaction_time
from repro.model.priorities import opa_with_analysis
from repro.model.taskset import TaskSet
from repro.sim.adversarial import find_worst_response
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.releases import sporadic_plan


@pytest.fixture(scope="module")
def pipeline_ts():
    return TaskSet.from_parameters(
        [
            ("sensor", 0.8, 0.10, 0.10, 10.0, 9.0),
            ("filter", 1.5, 0.20, 0.20, 20.0, 18.0),
            ("actuate", 1.0, 0.10, 0.10, 20.0, 20.0),
            ("logger", 2.0, 0.30, 0.30, 50.0, 45.0),
        ]
    )


@pytest.mark.benchmark(group="extensions")
def test_chain_bound_vs_measurement(benchmark, pipeline_ts):
    """Chain reaction bound covers measured propagation (proposed)."""
    chain = TaskChain(
        "loop", pipeline_ts, ("sensor", "filter", "actuate")
    )
    result = analyze_taskset(pipeline_ts, "proposed", ls_policy="as_marked")
    bound = chain_reaction_bound(chain, result)

    def measure():
        rng = np.random.default_rng(12)
        trace = ProposedSimulator(pipeline_ts).run(
            sporadic_plan(pipeline_ts, 2000.0, rng)
        )
        return max_reaction_time(chain, trace)

    measured = benchmark.pedantic(measure, rounds=2, iterations=1)
    print(f"\nchain: measured {measured:.2f} <= bound {bound.total:.2f} "
          f"(tightness {measured / bound.total:.0%})")
    assert measured <= bound.total + 1e-6


@pytest.mark.benchmark(group="extensions")
def test_sensitivity_bisection(benchmark, pipeline_ts):
    """Critical execution-scaling factor under the proposed protocol."""
    result = benchmark.pedantic(
        lambda: critical_scaling_factor(
            pipeline_ts, "execution", protocol="proposed", tolerance=0.05
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\ncritical execution scaling: {result.critical_factor:.2f} "
          f"({result.evaluations} schedulability tests)")
    assert result.schedulable_at_one
    assert result.critical_factor >= 1.0


@pytest.mark.benchmark(group="extensions")
def test_adversarial_search_tightness(benchmark, pipeline_ts):
    """Worst observed response vs the [3]-analysis bound."""
    from repro.analysis.interface import AnalysisOptions
    from repro.analysis.wasly import WaslyAnalysis

    victim = "sensor"
    bound = WaslyAnalysis(
        AnalysisOptions(stop_at_deadline=False)
    ).response_time(pipeline_ts, pipeline_ts.by_name(victim)).wcrt

    adv = benchmark.pedantic(
        lambda: find_worst_response(
            pipeline_ts, victim, WaslySimulator,
            rng=np.random.default_rng(21),
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\nadversarial search: observed {adv.worst_response:.3f} "
          f"vs bound {bound:.3f} "
          f"(tightness {adv.worst_response / bound:.0%}, "
          f"{adv.patterns_tried} patterns)")
    assert adv.worst_response <= bound + 1e-6


@pytest.mark.benchmark(group="extensions")
def test_opa_with_proposed_oracle(benchmark, pipeline_ts):
    """Audsley's OPA over the proposed-protocol verdict oracle."""
    ordered = benchmark.pedantic(
        lambda: opa_with_analysis(pipeline_ts, protocol="proposed"),
        rounds=1,
        iterations=1,
    )
    assert ordered is not None
    print(f"\nOPA order: {[t.name for t in ordered]}")


@pytest.mark.benchmark(group="extensions")
def test_multicore_scaling(benchmark, bench_options):
    """System-level ratio on a 4-core platform (partition + per-core).

    Uses the MILP analysis per core; a system passes when every core
    does. Demonstrates the full platform pipeline at benchmark scale.
    """
    from repro.experiments.multicore import (
        MulticoreConfig,
        run_multicore_point,
    )

    config = MulticoreConfig(
        num_cores=4,
        n_tasks=12,
        total_utilization=1.2,
        gamma=0.2,
        method="milp",
    )
    result = benchmark.pedantic(
        lambda: run_multicore_point(
            config, systems=4, seed=2024, options=bench_options
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\n4-core systems schedulable: "
          + ", ".join(f"{p}={result.ratios[p]:.2f}" for p in config.protocols)
          + f" (partition failures: {result.partition_failures})")
    assert result.systems_evaluated == 4
