"""Ablation benchmarks for the design choices called out in DESIGN.md.

* **LS-marking policy** — greedy (Sec. VI) vs no marking vs everything
  vs a static tightest-deadline heuristic, on a batch of random sets.
* **NPS convention** — the paper-framework "carry" variant vs the
  exact busy-window analysis (how much of the NPS baseline's strength
  depends on the carry-in convention).
* **Bound tightness** — the MILP delay bound vs the closed-form screen
  (why the MILP is worth its cost).
* **Backend** — HiGHS vs the pure-Python branch-and-bound on the same
  delay MILP.
"""

import numpy as np
import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.ls_assignment import LS_POLICIES
from repro.analysis.nps import NpsAnalysis
from repro.analysis.proposed.closed_form import closed_form_delay_bound
from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.generator import GenerationConfig, generate_tasksets
from repro.milp import BranchBoundBackend, HighsBackend


@pytest.fixture(scope="module")
def batch():
    config = GenerationConfig(n=5, utilization=0.35, gamma=0.2, beta=0.5)
    return list(generate_tasksets(config, 12, seed=31))


@pytest.mark.benchmark(group="ablation")
def test_ls_policy_ablation(benchmark, batch, bench_options):
    """Accepted-set counts per marking policy on the same batch."""
    analysis = ProposedAnalysis(bench_options)

    def evaluate():
        counts = {}
        for name, policy in LS_POLICIES.items():
            counts[name] = sum(
                policy(ts, analysis, collect_results=False).schedulable
                for ts in batch
            )
        return counts

    counts = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\naccepted sets out of {len(batch)}: {counts}")
    # The greedy search dominates the no-marking baseline by design
    # (it only adds marks when a task would otherwise miss).
    assert counts["greedy"] >= counts["all_nls"]


@pytest.mark.benchmark(group="ablation")
def test_nps_variant_ablation(benchmark, batch):
    """Exact busy-window NPS vs the paper-framework carry variant."""

    def evaluate():
        exact = sum(NpsAnalysis(variant="exact").is_schedulable(ts) for ts in batch)
        carry = sum(NpsAnalysis(variant="carry").is_schedulable(ts) for ts in batch)
        return exact, carry

    exact, carry = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\nNPS exact accepts {exact}/{len(batch)}, carry {carry}/{len(batch)}")
    assert carry <= exact  # carry is strictly more pessimistic


@pytest.mark.benchmark(group="ablation")
def test_bound_tightness_ablation(benchmark, batch):
    """Mean closed-form / MILP bound ratio (MILP tightness payoff)."""
    options = AnalysisOptions(stop_at_deadline=False, max_iterations=30)
    analysis = ProposedAnalysis(options)

    def evaluate():
        ratios = []
        for ts in batch[:4]:
            for task in ts:
                milp = analysis.response_time(ts, task)
                if not milp.converged:
                    continue
                closed = closed_form_delay_bound(
                    ts, task, blocking_intervals=2, urgent_possible=True,
                    deadline_cap=1e12,
                )
                ratios.append(closed / milp.wcrt)
        return ratios

    ratios = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    finite = [r for r in ratios if np.isfinite(r)]
    diverged = len(ratios) - len(finite)
    print(f"\nclosed-form/MILP bound ratio: mean {np.mean(finite):.2f}, "
          f"max {max(finite):.2f} over {len(finite)} tasks "
          f"(+{diverged} where only the closed form diverges)")
    assert min(ratios) >= 1.0 - 1e-9  # closed form is never tighter


@pytest.mark.benchmark(group="ablation")
def test_method_tier_ablation(benchmark, batch):
    """Acceptance by analysis tier: closed-form vs LP vs MILP.

    Each tier is a safe over-approximation of the next, so acceptance
    counts must be monotone: closed_form <= lp <= milp.
    """

    def evaluate():
        counts = {}
        for method in ("closed_form", "lp", "milp"):
            analysis = ProposedAnalysis(method=method)
            counts[method] = sum(
                analysis.first_unschedulable(ts) is None for ts in batch
            )
        return counts

    counts = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\naccepted by tier (of {len(batch)}): {counts}")
    assert counts["closed_form"] <= counts["lp"] <= counts["milp"]


@pytest.mark.benchmark(group="ablation")
def test_backend_ablation(benchmark, batch):
    """HiGHS vs branch-and-bound on one representative delay MILP."""
    ts = batch[0]
    task = ts[len(ts) - 1]
    built = build_delay_milp(ts, task, 15.0, AnalysisMode.NLS)

    highs = built.model.solve(HighsBackend())

    def solve_bb():
        return built.model.solve(BranchBoundBackend(max_nodes=500_000))

    bb = benchmark.pedantic(solve_bb, rounds=1, iterations=1)
    print(f"\nHiGHS {highs.objective:.4f} in {highs.runtime_seconds:.3f}s; "
          f"B&B {bb.objective:.4f} in {bb.runtime_seconds:.3f}s "
          f"({bb.node_count} nodes)")
    assert abs(highs.objective - bb.objective) <= 1e-5


@pytest.mark.benchmark(group="ablation")
def test_carry_refinement_ablation(benchmark, batch):
    """Paper's eta(t)+1 carry vs the jitter-aware refinement.

    The refinement (eta(t + R_j), hierarchical hp WCRTs) is a strict
    tightening: it must accept a superset of the sets the paper-faithful
    analysis accepts.
    """

    def evaluate():
        paper = ProposedAnalysis()
        refined = ProposedAnalysis(carry_refinement=True)
        paper_ok = sum(
            paper.first_unschedulable(ts) is None for ts in batch
        )
        refined_ok = sum(
            refined.first_unschedulable(ts) is None for ts in batch
        )
        return paper_ok, refined_ok

    paper_ok, refined_ok = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    print(f"\naccepted: paper-faithful {paper_ok}/{len(batch)}, "
          f"carry-refined {refined_ok}/{len(batch)}")
    assert refined_ok >= paper_ok
