"""Fig. 2 reproduction benchmarks: schedulability-ratio sweeps.

One test per inset (a)-(f). Each runs a *reduced-size* version of the
paper's experiment (subsampled sweep, ~8 task sets per point instead of
the paper's larger samples) with the full MILP analysis, prints the
series, and asserts the qualitative shape the paper reports:

* the proposed protocol schedules at least as many sets as protocol [3]
  and as NPS at every point (up to small-sample noise);
* at gamma = 0.1 (insets (a), (b), and the low end of (e)) protocol [3]
  can fall *below* NPS — the phenomenon motivating the paper;
* the advantage of the DMA protocols over NPS grows with gamma
  (inset (e)), and the advantage of the proposed protocol is largest
  for tight deadlines (small beta, inset (f)).

Full-size runs: ``repro figure fig2a --sets 50``.
"""

import pytest

from _helpers import assert_proposed_dominates, run_and_report, scaled_inset

#: Task sets per sweep point in the reduced benchmarks.
SETS = 8
#: fig2b uses n=10 tasks (bigger MILPs): fewer sets.
SETS_B = 4


def _run(benchmark, config, options):
    return benchmark.pedantic(
        lambda: run_and_report(config, options), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="figure2")
def test_fig2a(benchmark, bench_options):
    """Inset (a): ratio vs U; n=6, gamma=0.1, beta=0.5."""
    config = scaled_inset("fig2a", SETS, start=1, stop=5)  # U=.2,.3,.4,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    # Ratios must be non-increasing in U (monotone pressure).
    series = result.series("proposed")
    assert all(b <= a + 1 / SETS for (_, a), (_, b) in zip(series, series[1:]))


@pytest.mark.benchmark(group="figure2")
def test_fig2b(benchmark, bench_options):
    """Inset (b): as (a) with n=10 tasks."""
    config = scaled_inset("fig2b", SETS_B, start=1, stop=4)  # U=.2,.3,.4
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)


@pytest.mark.benchmark(group="figure2")
def test_fig2c(benchmark, bench_options):
    """Inset (c): tighter deadlines (beta=0.25), gamma=0.3."""
    config = scaled_inset("fig2c", SETS, start=1, stop=5)  # U=.2,.3,.4,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    # The paper reports the largest NPS gap in this configuration.
    assert result.advantage("proposed", "nps_carry") >= 0.0


@pytest.mark.benchmark(group="figure2")
def test_fig2d(benchmark, bench_options):
    """Inset (d): memory-heavy tasks (gamma=0.5)."""
    config = scaled_inset("fig2d", SETS, start=1, stop=5)  # U=.2,.3,.4,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)


@pytest.mark.benchmark(group="figure2")
def test_fig2e(benchmark, bench_options):
    """Inset (e): ratio vs gamma at U=0.5.

    The DMA advantage must grow with gamma: the gap between the
    proposed protocol and NPS at gamma=0.5 is at least the gap at
    gamma=0.1 (up to one-set noise).
    """
    config = scaled_inset("fig2e", SETS, keep_every=2)  # gamma=.1,.3,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    gaps = [
        p.ratios["proposed"] - p.ratios["nps_carry"] for p in result.points
    ]
    assert gaps[-1] >= gaps[0] - 1 / SETS


@pytest.mark.benchmark(group="figure2")
def test_fig2f(benchmark, bench_options):
    """Inset (f): ratio vs beta at U=0.5, gamma=0.3.

    Looser deadlines (larger beta) help every approach: each series
    must be non-decreasing in beta (up to one-set noise).
    """
    config = scaled_inset("fig2f", SETS, keep_every=2)  # beta=0,.5,1
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    for protocol in result.config.protocols:
        series = result.series(protocol)
        assert all(
            b >= a - 1 / SETS for (_, a), (_, b) in zip(series, series[1:])
        ), protocol
