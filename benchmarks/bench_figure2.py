"""Fig. 2 reproduction benchmarks: schedulability-ratio sweeps.

One test per inset (a)-(f). Each runs a *reduced-size* version of the
paper's experiment (subsampled sweep, ~8 task sets per point instead of
the paper's larger samples) with the full MILP analysis, prints the
series, and asserts the qualitative shape the paper reports:

* the proposed protocol schedules at least as many sets as protocol [3]
  and as NPS at every point (up to small-sample noise);
* at gamma = 0.1 (insets (a), (b), and the low end of (e)) protocol [3]
  can fall *below* NPS — the phenomenon motivating the paper;
* the advantage of the DMA protocols over NPS grows with gamma
  (inset (e)), and the advantage of the proposed protocol is largest
  for tight deadlines (small beta, inset (f)).

Full-size runs: ``repro figure fig2a --sets 50``.
"""

import pytest

from _helpers import assert_proposed_dominates, run_and_report, scaled_inset

#: Task sets per sweep point in the reduced benchmarks.
SETS = 8
#: fig2b uses n=10 tasks (bigger MILPs): fewer sets.
SETS_B = 4


def _run(benchmark, config, options):
    return benchmark.pedantic(
        lambda: run_and_report(config, options), rounds=1, iterations=1
    )


@pytest.mark.benchmark(group="figure2")
def test_fig2a(benchmark, bench_options):
    """Inset (a): ratio vs U; n=6, gamma=0.1, beta=0.5."""
    config = scaled_inset("fig2a", SETS, start=1, stop=5)  # U=.2,.3,.4,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    # Ratios must be non-increasing in U (monotone pressure).
    series = result.series("proposed")
    assert all(b <= a + 1 / SETS for (_, a), (_, b) in zip(series, series[1:]))


@pytest.mark.benchmark(group="figure2")
def test_fig2b(benchmark, bench_options):
    """Inset (b): as (a) with n=10 tasks."""
    config = scaled_inset("fig2b", SETS_B, start=1, stop=4)  # U=.2,.3,.4
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)


@pytest.mark.benchmark(group="figure2")
def test_fig2c(benchmark, bench_options):
    """Inset (c): tighter deadlines (beta=0.25), gamma=0.3."""
    config = scaled_inset("fig2c", SETS, start=1, stop=5)  # U=.2,.3,.4,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    # The paper reports the largest NPS gap in this configuration.
    assert result.advantage("proposed", "nps_carry") >= 0.0


@pytest.mark.benchmark(group="figure2")
def test_fig2d(benchmark, bench_options):
    """Inset (d): memory-heavy tasks (gamma=0.5)."""
    config = scaled_inset("fig2d", SETS, start=1, stop=5)  # U=.2,.3,.4,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)


@pytest.mark.benchmark(group="figure2")
def test_fig2e(benchmark, bench_options):
    """Inset (e): ratio vs gamma at U=0.5.

    The DMA advantage must grow with gamma: the gap between the
    proposed protocol and NPS at gamma=0.5 is at least the gap at
    gamma=0.1 (up to one-set noise).
    """
    config = scaled_inset("fig2e", SETS, keep_every=2)  # gamma=.1,.3,.5
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    gaps = [
        p.ratios["proposed"] - p.ratios["nps_carry"] for p in result.points
    ]
    assert gaps[-1] >= gaps[0] - 1 / SETS


@pytest.mark.benchmark(group="figure2")
def test_fig2f(benchmark, bench_options):
    """Inset (f): ratio vs beta at U=0.5, gamma=0.3.

    Looser deadlines (larger beta) help every approach: each series
    must be non-decreasing in beta (up to one-set noise).
    """
    config = scaled_inset("fig2f", SETS, keep_every=2)  # beta=0,.5,1
    result = _run(benchmark, config, bench_options)
    assert_proposed_dominates(result)
    for protocol in result.config.protocols:
        series = result.series(protocol)
        assert all(
            b >= a - 1 / SETS for (_, a), (_, b) in zip(series, series[1:])
        ), protocol


# ----------------------------------------------------------------------
# parallel engine: before/after wall-clock and the BENCH artifact
# ----------------------------------------------------------------------
import json
import os
import time
from pathlib import Path


@pytest.mark.benchmark(group="parallel")
def test_parallel_sweep_speedup(benchmark, tmp_path):
    """Cold + warm wall-clock at jobs=1/2/4 with the persistent store.

    Writes ``BENCH_parallel.json`` next to the repo root. Each jobs
    level gets a *fresh* store: the cold run pays full analysis cost
    and populates it, the warm repeat on the same store must answer
    (nearly) every verdict from disk — its integer-solve count is
    asserted to be zero. Ratios and ledgers of every run must match
    the store-less sequential reference; full analysis_stats identity
    is only asserted for the store-less reference itself (a shared
    store makes hit/miss attribution timing-dependent across workers,
    which is why the equivalence *tests* pin the no-store path).

    The >=3x speedup acceptance bar is only asserted on machines with
    >= 4 cores — on smaller boxes the artifact still records the
    measured ratios honestly (``cpu_count`` says what it ran on).

    Runs without a per-solve time limit: a wall-clock cutoff makes the
    solver's answer depend on machine load, which would break the
    bit-identity comparison this benchmark certifies (an overloaded
    box could degrade a parallel solve the sequential pass finished).
    """
    from repro.analysis.interface import AnalysisOptions
    from repro.experiments.report import aggregate_analysis_stats
    from repro.experiments.runner import run_experiment

    options = AnalysisOptions()
    config = scaled_inset("fig2a", SETS, start=1, stop=5)  # U=.2,.3,.4,.5

    def reference_run():
        t0 = time.perf_counter()
        result = run_experiment(config, options=options)
        return result, time.perf_counter() - t0

    reference, reference_s = benchmark.pedantic(
        reference_run, rounds=1, iterations=1
    )

    def reduced_match(result):
        return all(
            a.ratios == b.ratios and a.failures == b.failures
            for a, b in zip(reference.points, result.points)
        )

    runs: dict = {}
    identical = True
    for jobs in (1, 2, 4):
        store = tmp_path / f"store-jobs{jobs}.sqlite"
        t0 = time.perf_counter()
        cold = run_experiment(
            config, options=options, jobs=jobs, cache_path=str(store)
        )
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = run_experiment(
            config, options=options, jobs=jobs, cache_path=str(store)
        )
        warm_s = time.perf_counter() - t0
        identical = identical and reduced_match(cold) and reduced_match(warm)
        cold_stats = aggregate_analysis_stats(cold.points)
        warm_stats = aggregate_analysis_stats(warm.points)
        runs[f"jobs{jobs}"] = {
            "cold_seconds": round(cold_s, 3),
            "warm_seconds": round(warm_s, 3),
            "cold_milp_solves": cold_stats.get("milp_solves", 0),
            "warm_milp_solves": warm_stats.get("milp_solves", 0),
            "warm_persistent_hits": warm_stats.get("persistent.hits", 0),
        }

    stats = dict(aggregate_analysis_stats(reference.points))
    lookups = stats.get("hits", 0) + stats.get("misses", 0)
    cold4 = runs["jobs4"]["cold_seconds"]
    speedup = reference_s / cold4 if cold4 else float("inf")
    artifact = {
        "experiment": "fig2a reduced (U=0.2..0.5, %d sets/point)" % SETS,
        "cpu_count": os.cpu_count(),
        "store_enabled": True,
        "sequential_seconds": round(reference_s, 3),
        "runs": runs,
        "speedup_jobs4_cold": round(speedup, 3),
        "bit_identical": identical,
        "cache_stats": stats,
        "cache_hit_rate": (
            round(stats.get("hits", 0) / lookups, 4) if lookups else 0.0
        ),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(json.dumps(artifact, indent=2))

    assert identical, "parallel sweep diverged from the sequential path"
    assert stats.get("hits", 0) > 0, "cache never hit on the reduced sweep"
    for name, entry in runs.items():
        budget = 0.05 * entry["cold_milp_solves"]
        assert entry["warm_milp_solves"] <= budget, (
            f"{name} warm run still solved {entry['warm_milp_solves']} "
            f"MILPs (cold run: {entry['cold_milp_solves']})"
        )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 3.0, (
            f"expected >=3x on a 4-core run, measured {speedup:.2f}x"
        )


@pytest.mark.benchmark(group="parallel")
def test_trace_overhead(benchmark, tmp_path):
    """Wall-clock cost of ``--trace`` on the reduced fig2a sweep.

    Runs the BENCH_parallel configuration untraced and traced
    (``jobs=4`` both times), writes ``BENCH_trace.json`` with both
    wall-clocks and the measured overhead, and asserts the traced run
    reconciles with its own results. The <5% acceptance bar is only
    asserted when the untraced baseline takes >=5 s — below that the
    ratio is dominated by process-pool startup noise; the artifact
    still records the measured value.
    """
    from repro.analysis.interface import AnalysisOptions
    from repro.experiments.runner import run_experiment
    from repro.obs import aggregate_events, read_trace, reconcile

    options = AnalysisOptions()
    config = scaled_inset("fig2a", SETS, start=1, stop=5)  # U=.2,.3,.4,.5

    t0 = time.perf_counter()
    run_experiment(config, options=options, jobs=4)
    untraced_s = time.perf_counter() - t0

    trace_path = tmp_path / "fig2a.trace.jsonl"

    def traced_run():
        t0 = time.perf_counter()
        result = run_experiment(
            config, options=options, jobs=4, trace_path=str(trace_path)
        )
        return result, time.perf_counter() - t0

    result, traced_s = benchmark.pedantic(traced_run, rounds=1, iterations=1)

    events = read_trace(trace_path)
    report = aggregate_events(events)
    problems = reconcile(report, result.points)
    overhead = traced_s / untraced_s - 1.0 if untraced_s else 0.0
    artifact = {
        "experiment": "fig2a reduced (U=0.2..0.5, %d sets/point)" % SETS,
        "jobs": 4,
        "untraced_seconds": round(untraced_s, 3),
        "traced_seconds": round(traced_s, 3),
        "overhead_fraction": round(overhead, 4),
        "events_written": len(events),
        "reconciles": not problems,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(json.dumps(artifact, indent=2))

    assert not problems, problems
    assert report.counts.get("solve", 0) > 0
    if untraced_s >= 5.0:
        assert overhead < 0.05, (
            f"tracing overhead {overhead:.1%} exceeds the 5% bar"
        )
