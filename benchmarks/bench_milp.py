"""Analysis-runtime benchmarks (the paper's Sec. VII runtime note).

The paper reports average analysis times "in the order of a few
hundreds of seconds" per task set with IBM CPLEX on an i7-6700K —
including the greedy algorithm's repeated analyses. These benchmarks
measure the same pipeline on our HiGHS-based stack: a single delay-MILP
solve, one task's response-time fixpoint, and a full greedy run.
"""

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.ls_assignment import greedy_ls_assignment
from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.generator import GenerationConfig, generate_taskset
from repro.milp import BranchBoundBackend, HighsBackend, SolveStatus

import numpy as np


@pytest.fixture(scope="module")
def taskset():
    rng = np.random.default_rng(2020)
    return generate_taskset(
        GenerationConfig(n=6, utilization=0.4, gamma=0.3, beta=0.5), rng
    )


@pytest.fixture(scope="module")
def lowest_priority_task(taskset):
    return taskset[len(taskset) - 1]


@pytest.mark.benchmark(group="milp")
def test_build_delay_milp(benchmark, taskset, lowest_priority_task):
    """Constraint-generation time for a mid-size window."""
    built = benchmark(
        build_delay_milp, taskset, lowest_priority_task, 30.0,
        AnalysisMode.NLS,
    )
    assert built.model.stats()["constraints"] > 0


@pytest.mark.benchmark(group="milp")
def test_solve_delay_milp_highs(benchmark, taskset, lowest_priority_task):
    """One HiGHS solve of the delay MILP (the inner loop of Sec. V)."""
    built = build_delay_milp(
        taskset, lowest_priority_task, 30.0, AnalysisMode.NLS
    )

    def solve():
        return built.model.solve(HighsBackend())

    solution = benchmark(solve)
    assert solution.status is SolveStatus.OPTIMAL


@pytest.mark.benchmark(group="milp")
def test_solve_delay_milp_branch_bound(benchmark, taskset):
    """The pure-Python backend on a small window (cross-check cost)."""
    task = taskset[1]
    built = build_delay_milp(taskset, task, 5.0, AnalysisMode.NLS)

    def solve():
        return built.model.solve(BranchBoundBackend(max_nodes=200_000))

    solution = benchmark.pedantic(solve, rounds=2, iterations=1)
    assert solution.status is SolveStatus.OPTIMAL


@pytest.mark.benchmark(group="analysis")
def test_response_time_fixpoint(benchmark, taskset):
    """Full iterated WCRT of the highest-priority task."""
    analysis = ProposedAnalysis(AnalysisOptions(stop_at_deadline=False))

    result = benchmark.pedantic(
        lambda: analysis.response_time(taskset, taskset[0]),
        rounds=2,
        iterations=1,
    )
    assert result.converged


@pytest.mark.benchmark(group="analysis")
def test_greedy_assignment_full_pipeline(benchmark, taskset):
    """The complete Sec. VI loop (paper: 'hundreds of seconds' with
    CPLEX at their scale; minutes-to-seconds at ours)."""
    outcome = benchmark.pedantic(
        lambda: greedy_ls_assignment(taskset, collect_results=False),
        rounds=1,
        iterations=1,
    )
    assert outcome.rounds >= 1


@pytest.mark.benchmark(group="analysis")
def test_greedy_assignment_cached_vs_uncached(benchmark, taskset):
    """Memoised greedy run: strictly fewer MILP solves, same outcome.

    The cached pass re-runs the exact greedy pipeline inside a fresh
    cache scope; the uncached pass uses a disabled cache with identical
    instrumentation, measuring the seed behaviour.
    """
    from repro.analysis.cache import AnalysisCache, cache_scope

    def run(enabled):
        cache = AnalysisCache(enabled=enabled)
        with cache_scope(cache):
            outcome = greedy_ls_assignment(taskset, collect_results=False)
        return outcome, cache.stats()

    baseline, baseline_stats = run(enabled=False)
    outcome, stats = benchmark.pedantic(
        lambda: run(enabled=True), rounds=1, iterations=1
    )
    assert outcome.schedulable == baseline.schedulable
    assert outcome.ls_names == baseline.ls_names
    assert stats["milp_solves"] <= baseline_stats["milp_solves"]
    print(
        f"\nMILP solves: {stats['milp_solves']} cached "
        f"vs {baseline_stats['milp_solves']} uncached "
        f"({stats['hits']} cache hits)"
    )


# ----------------------------------------------------------------------
# persistent cache + screening: the BENCH_milp.json artifact
# ----------------------------------------------------------------------
import json
import time
from pathlib import Path


@pytest.mark.benchmark(group="cache")
def test_persistent_cache_cold_warm(benchmark, tmp_path):
    """Unscreened baseline vs cold screened run vs warm persistent rerun.

    Three sequential passes over the reduced fig2a sweep (the
    ``BENCH_parallel.json`` configuration):

    1. **baseline** — ``AnalysisOptions(screening=False)``, no store:
       every verdict decided by the plain bottom-up MILP fixpoint;
    2. **cold** — screening on, fresh persistent store: the vectorised
       closed-form and block-LP screens absorb most integer solves
       while the store fills;
    3. **warm** — the same store again, traced: near-everything is
       served from disk, and the trace must reconcile exactly with the
       reported counters.

    Writes ``BENCH_milp.json`` next to the repo root. Acceptance bars:
    verdicts identical across all three passes, the cold run issues
    <50% of the baseline's integer solves, the warm run's persistent
    hit rate is >=95% with integer solves <=5% of the cold run's, and
    the warm trace reconciles with no problems.
    """
    from _helpers import scaled_inset
    from repro.analysis.interface import AnalysisOptions
    from repro.experiments.report import aggregate_analysis_stats
    from repro.experiments.runner import run_experiment
    from repro.obs import aggregate_events, read_trace, reconcile

    config = scaled_inset("fig2a", 8, start=1, stop=5)  # U=.2,.3,.4,.5
    db = tmp_path / "analysis-cache.sqlite"
    trace = tmp_path / "warm.trace.jsonl"

    t0 = time.perf_counter()
    baseline = run_experiment(
        config, options=AnalysisOptions(screening=False)
    )
    baseline_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = run_experiment(config, cache_path=str(db))
    cold_s = time.perf_counter() - t0

    def warm_run():
        t0 = time.perf_counter()
        result = run_experiment(
            config, cache_path=str(db), trace_path=str(trace)
        )
        return result, time.perf_counter() - t0

    warm, warm_s = benchmark.pedantic(warm_run, rounds=1, iterations=1)

    identical = all(
        a.ratios == b.ratios == c.ratios
        and a.failures == b.failures == c.failures
        for a, b, c in zip(baseline.points, cold.points, warm.points)
    )
    base_stats = aggregate_analysis_stats(baseline.points)
    cold_stats = aggregate_analysis_stats(cold.points)
    warm_stats = aggregate_analysis_stats(warm.points)
    reduction = (
        1.0 - cold_stats["milp_solves"] / base_stats["milp_solves"]
        if base_stats["milp_solves"]
        else 0.0
    )
    served = warm_stats["persistent.hits"]
    fall_throughs = served + warm_stats["misses"]
    hit_rate = served / fall_throughs if fall_throughs else 0.0
    problems = reconcile(
        aggregate_events(read_trace(trace)), warm.points
    )

    artifact = {
        "experiment": "fig2a reduced (U=0.2..0.5, 8 sets/point)",
        "phases": {
            "baseline_unscreened": {
                "seconds": round(baseline_s, 3),
                "stats": dict(base_stats),
            },
            "cold_screened": {
                "seconds": round(cold_s, 3),
                "stats": dict(cold_stats),
            },
            "warm_persistent": {
                "seconds": round(warm_s, 3),
                "stats": dict(warm_stats),
            },
        },
        "integer_solve_reduction_cold": round(reduction, 4),
        "warm_persistent_hit_rate": round(hit_rate, 4),
        "warm_integer_solves": warm_stats["milp_solves"],
        "verdicts_identical": identical,
        "profile_reconciles": not problems,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_milp.json"
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(json.dumps(artifact, indent=2))

    assert identical, "cache/screening configuration changed a verdict"
    assert reduction > 0.5, (
        f"screens removed only {reduction:.1%} of the baseline's "
        f"{base_stats['milp_solves']} integer solves"
    )
    assert hit_rate >= 0.95, (
        f"warm persistent hit rate {hit_rate:.1%} < 95%"
    )
    assert warm_stats["milp_solves"] <= 0.05 * cold_stats["milp_solves"], (
        f"warm run needed {warm_stats['milp_solves']} integer solves"
    )
    assert not problems, problems
