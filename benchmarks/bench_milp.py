"""Analysis-runtime benchmarks (the paper's Sec. VII runtime note).

The paper reports average analysis times "in the order of a few
hundreds of seconds" per task set with IBM CPLEX on an i7-6700K —
including the greedy algorithm's repeated analyses. These benchmarks
measure the same pipeline on our HiGHS-based stack: a single delay-MILP
solve, one task's response-time fixpoint, and a full greedy run.
"""

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.analysis.ls_assignment import greedy_ls_assignment
from repro.analysis.proposed.formulation import AnalysisMode, build_delay_milp
from repro.analysis.proposed.response_time import ProposedAnalysis
from repro.generator import GenerationConfig, generate_taskset
from repro.milp import BranchBoundBackend, HighsBackend, SolveStatus

import numpy as np


@pytest.fixture(scope="module")
def taskset():
    rng = np.random.default_rng(2020)
    return generate_taskset(
        GenerationConfig(n=6, utilization=0.4, gamma=0.3, beta=0.5), rng
    )


@pytest.fixture(scope="module")
def lowest_priority_task(taskset):
    return taskset[len(taskset) - 1]


@pytest.mark.benchmark(group="milp")
def test_build_delay_milp(benchmark, taskset, lowest_priority_task):
    """Constraint-generation time for a mid-size window."""
    built = benchmark(
        build_delay_milp, taskset, lowest_priority_task, 30.0,
        AnalysisMode.NLS,
    )
    assert built.model.stats()["constraints"] > 0


@pytest.mark.benchmark(group="milp")
def test_solve_delay_milp_highs(benchmark, taskset, lowest_priority_task):
    """One HiGHS solve of the delay MILP (the inner loop of Sec. V)."""
    built = build_delay_milp(
        taskset, lowest_priority_task, 30.0, AnalysisMode.NLS
    )

    def solve():
        return built.model.solve(HighsBackend())

    solution = benchmark(solve)
    assert solution.status is SolveStatus.OPTIMAL


@pytest.mark.benchmark(group="milp")
def test_solve_delay_milp_branch_bound(benchmark, taskset):
    """The pure-Python backend on a small window (cross-check cost)."""
    task = taskset[1]
    built = build_delay_milp(taskset, task, 5.0, AnalysisMode.NLS)

    def solve():
        return built.model.solve(BranchBoundBackend(max_nodes=200_000))

    solution = benchmark.pedantic(solve, rounds=2, iterations=1)
    assert solution.status is SolveStatus.OPTIMAL


@pytest.mark.benchmark(group="analysis")
def test_response_time_fixpoint(benchmark, taskset):
    """Full iterated WCRT of the highest-priority task."""
    analysis = ProposedAnalysis(AnalysisOptions(stop_at_deadline=False))

    result = benchmark.pedantic(
        lambda: analysis.response_time(taskset, taskset[0]),
        rounds=2,
        iterations=1,
    )
    assert result.converged


@pytest.mark.benchmark(group="analysis")
def test_greedy_assignment_full_pipeline(benchmark, taskset):
    """The complete Sec. VI loop (paper: 'hundreds of seconds' with
    CPLEX at their scale; minutes-to-seconds at ours)."""
    outcome = benchmark.pedantic(
        lambda: greedy_ls_assignment(taskset, collect_results=False),
        rounds=1,
        iterations=1,
    )
    assert outcome.rounds >= 1


@pytest.mark.benchmark(group="analysis")
def test_greedy_assignment_cached_vs_uncached(benchmark, taskset):
    """Memoised greedy run: strictly fewer MILP solves, same outcome.

    The cached pass re-runs the exact greedy pipeline inside a fresh
    cache scope; the uncached pass uses a disabled cache with identical
    instrumentation, measuring the seed behaviour.
    """
    from repro.analysis.cache import AnalysisCache, cache_scope

    def run(enabled):
        cache = AnalysisCache(enabled=enabled)
        with cache_scope(cache):
            outcome = greedy_ls_assignment(taskset, collect_results=False)
        return outcome, cache.stats()

    baseline, baseline_stats = run(enabled=False)
    outcome, stats = benchmark.pedantic(
        lambda: run(enabled=True), rounds=1, iterations=1
    )
    assert outcome.schedulable == baseline.schedulable
    assert outcome.ls_names == baseline.ls_names
    assert stats["milp_solves"] <= baseline_stats["milp_solves"]
    print(
        f"\nMILP solves: {stats['milp_solves']} cached "
        f"vs {baseline_stats['milp_solves']} uncached "
        f"({stats['hits']} cache hits)"
    )
