"""Shared helpers for the benchmark suite (imported by the bench modules).

The figure benchmarks regenerate the paper's evaluation at a reduced
scale (fewer task sets per point, subsampled sweeps) so the whole suite
stays laptop-sized; the CLI (``repro figure <inset> --sets 50``) runs
the full-size version. Each benchmark prints the series it produced —
the printed tables are the artefacts that EXPERIMENTS.md references.
"""

from __future__ import annotations

import pytest

from repro.analysis.interface import AnalysisOptions
from repro.experiments.config import ExperimentConfig, figure2_config
from repro.experiments.report import ascii_plot, render_sweep_table
from repro.experiments.runner import SweepResult, run_experiment


@pytest.fixture
def bench_options() -> AnalysisOptions:
    """Analysis options for benchmarks: cap individual MILP solves.

    The dual bound is reported on time-limit, so verdicts stay safe
    (possibly pessimistic) even if a solve is cut short.
    """
    return AnalysisOptions(time_limit=10.0)


def scaled_inset(
    inset: str,
    sets_per_point: int,
    keep_every: int = 1,
    start: int = 0,
    stop: int | None = None,
) -> ExperimentConfig:
    """A reduced-size version of a Fig. 2 inset configuration."""
    full = figure2_config(inset, sets_per_point=sets_per_point)
    points = full.points[start:stop:keep_every]
    from dataclasses import replace

    return replace(full, points=points)


def run_and_report(
    config: ExperimentConfig, options: AnalysisOptions
) -> SweepResult:
    """Run a sweep and print its table + ASCII plot."""
    result = run_experiment(config, options=options)
    print()
    print(render_sweep_table(result))
    print(ascii_plot(result))
    return result


def assert_proposed_dominates(
    result: SweepResult, slack_sets: int = 1
) -> None:
    """The paper's headline shape: proposed >= both baselines.

    ``slack_sets`` task sets of sampling noise are tolerated per point
    (the reduced benchmark sample is small).
    """
    tolerance = slack_sets / result.points[0].sets_evaluated
    for point in result.points:
        proposed = point.ratios["proposed"]
        for baseline in ("nps_carry", "wasly"):
            assert proposed >= point.ratios[baseline] - tolerance, (
                f"proposed below {baseline} at x={point.x}: "
                f"{proposed} vs {point.ratios[baseline]}"
            )
