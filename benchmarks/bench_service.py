"""Sweep-service benchmarks: dispatch overhead and the warm store path.

One benchmark, three measurements on the reduced fig2a sweep:

* a sequential store-less reference run (the ground truth the service
  must match bit-for-bit in ratios and ledger);
* a cold service run — coordinator + 4 socket-connected local workers
  + persistent unit store — timed end to end including worker spawn;
* a repeated identical submit against the same store with a fresh
  checkpoint directory, which the coordinator must answer entirely
  from the content-addressed unit store: zero MILP solves, zero cache
  misses, ``unit_store.hits`` == unit count, milliseconds not minutes.

Writes ``BENCH_service.json`` next to the repo root. As with
``BENCH_parallel.json``, the ``cpu_count`` field records what the
numbers were measured on — a 1-core box will honestly show the cold
service run *slower* than sequential (dispatch overhead without
parallel hardware); the warm-repeat speedup is hardware-independent.
"""

import json
import os
import time
from pathlib import Path

import pytest

from _helpers import scaled_inset

#: Task sets per sweep point (matches BENCH_parallel.json).
SETS = 8
#: Local worker processes behind the cold service run.
WORKERS = 4


@pytest.mark.benchmark(group="service")
def test_service_sweep_benchmark(benchmark, tmp_path):
    """Cold service vs sequential, then a store-served warm repeat."""
    from repro.analysis.interface import AnalysisOptions
    from repro.experiments.report import aggregate_analysis_stats
    from repro.experiments.runner import run_experiment
    from repro.service import run_service_sweep

    options = AnalysisOptions()
    config = scaled_inset("fig2a", SETS, start=1, stop=5)  # U=.2,.3,.4,.5

    t0 = time.perf_counter()
    sequential = run_experiment(config, options=options)
    sequential_s = time.perf_counter() - t0

    store = tmp_path / "unit-store.sqlite"

    def cold_run():
        t0 = time.perf_counter()
        result = run_service_sweep(
            config,
            workers=WORKERS,
            options=options,
            cache_path=str(store),
            checkpoint_dir=str(tmp_path / "cold-ckpt"),
        )
        return result, time.perf_counter() - t0

    cold, cold_s = benchmark.pedantic(cold_run, rounds=1, iterations=1)

    # Fresh checkpoint dir: nothing resumes, every unit must be
    # answered by the pre-dispatch digest probe against the store.
    t0 = time.perf_counter()
    warm = run_service_sweep(
        config,
        workers=WORKERS,
        options=options,
        cache_path=str(store),
        checkpoint_dir=str(tmp_path / "warm-ckpt"),
    )
    warm_s = time.perf_counter() - t0

    def reduced_match(result):
        return all(
            a.ratios == b.ratios and a.failures == b.failures
            for a, b in zip(sequential.points, result.points)
        )

    identical = reduced_match(cold) and reduced_match(warm)
    cold_stats = dict(aggregate_analysis_stats(cold.points))
    warm_stats = dict(aggregate_analysis_stats(warm.points))
    total_units = sum(p.sets_evaluated for p in warm.points)
    warm_compute = {
        k: v for k, v in warm_stats.items() if k != "unit_store.hits"
    }
    artifact = {
        "experiment": "fig2a reduced (U=0.2..0.5, %d sets/point)" % SETS,
        "cpu_count": os.cpu_count(),
        "workers": WORKERS,
        "sequential_seconds": round(sequential_s, 3),
        "service_cold_seconds": round(cold_s, 3),
        "service_warm_seconds": round(warm_s, 3),
        "warm_speedup_vs_cold": round(
            cold_s / warm_s if warm_s else float("inf"), 1
        ),
        "bit_identical": identical,
        "cold_milp_solves": cold_stats.get("milp_solves", 0),
        "warm_milp_solves": warm_stats.get("milp_solves", 0),
        "warm_unit_store_hits": warm_stats.get("unit_store.hits", 0),
        "total_units": total_units,
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    print()
    print(json.dumps(artifact, indent=2))

    assert identical, "service sweep diverged from the sequential path"
    assert warm_stats.get("unit_store.hits", 0) == total_units, (
        "warm repeat was not answered entirely from the unit store"
    )
    assert all(value == 0 for value in warm_compute.values()), (
        f"warm repeat performed analysis work: {warm_compute}"
    )
    assert warm_s < cold_s, "store-served repeat was not faster than cold"
