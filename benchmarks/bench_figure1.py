"""Fig. 1 reproduction benchmark: the motivating schedules.

Regenerates both insets of the paper's Fig. 1 (plus the proposed
protocol's schedule on the same scenario) and checks the qualitative
outcome the figure demonstrates: the task under analysis misses under
protocol [3] because of double blocking, and meets under NPS and under
the proposed protocol.
"""

import pytest

from repro.examples_support import figure1_plan, figure1_taskset
from repro.sim.gantt import render_gantt
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.validate import count_blocking_intervals

DEADLINE = 8.0


@pytest.mark.benchmark(group="figure1")
def test_fig1a_wasly_schedule(benchmark):
    """Fig. 1(a): protocol [3] blocks ti twice -> deadline miss."""
    sim = WaslySimulator(figure1_taskset())
    trace = benchmark(lambda: sim.run(figure1_plan()))
    print()
    print(render_gantt(trace, width=90, until=14.0))
    ti = trace.jobs_of("ti")[0]
    assert count_blocking_intervals(trace, ti) == 2
    assert trace.max_response_time("ti") > DEADLINE  # paper: miss


@pytest.mark.benchmark(group="figure1")
def test_fig1b_nps_schedule(benchmark):
    """Fig. 1(b): plain NPS blocks ti once -> deadline met."""
    sim = NpsSimulator(figure1_taskset())
    trace = benchmark(lambda: sim.run(figure1_plan()))
    print()
    print(render_gantt(trace, width=90, until=14.0))
    assert trace.max_response_time("ti") <= DEADLINE  # paper: meet


@pytest.mark.benchmark(group="figure1")
def test_fig1_proposed_schedule(benchmark):
    """The proposed protocol on the same scenario: cancel + urgent."""
    sim = ProposedSimulator(figure1_taskset(mark_ls=True))
    trace = benchmark(lambda: sim.run(figure1_plan()))
    print()
    print(render_gantt(trace, width=90, until=14.0))
    ti = trace.jobs_of("ti")[0]
    assert ti.urgent and ti.copy_in_by == "cpu"
    assert count_blocking_intervals(trace, ti) <= 1
    assert trace.max_response_time("ti") <= DEADLINE
