"""Benchmark-suite conftest: re-export shared fixtures."""

from _helpers import bench_options  # noqa: F401
