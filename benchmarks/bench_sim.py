"""Simulator throughput benchmarks."""

import numpy as np
import pytest

from repro.generator import GenerationConfig, generate_taskset
from repro.sim.interval_sim import ProposedSimulator, WaslySimulator
from repro.sim.nps_sim import NpsSimulator
from repro.sim.releases import sporadic_plan


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    taskset = generate_taskset(
        GenerationConfig(n=8, utilization=0.5, gamma=0.2, beta=0.8), rng
    )
    # Mark the two tightest tasks LS so the proposed simulator
    # exercises cancellation/urgency paths.
    names = [t.name for t in sorted(taskset, key=lambda t: t.deadline)[:2]]
    taskset = taskset.with_ls_marks(names)
    plan = sporadic_plan(taskset, horizon=5000.0, rng=rng)
    return taskset, plan


@pytest.mark.benchmark(group="sim")
def test_nps_simulator_throughput(benchmark, workload):
    taskset, plan = workload
    trace = benchmark(lambda: NpsSimulator(taskset).run(plan))
    assert len(trace.completed_jobs()) == plan.total_jobs


@pytest.mark.benchmark(group="sim")
def test_wasly_simulator_throughput(benchmark, workload):
    taskset, plan = workload
    trace = benchmark(lambda: WaslySimulator(taskset).run(plan))
    assert len(trace.completed_jobs()) == plan.total_jobs


@pytest.mark.benchmark(group="sim")
def test_proposed_simulator_throughput(benchmark, workload):
    taskset, plan = workload
    trace = benchmark(lambda: ProposedSimulator(taskset).run(plan))
    assert len(trace.completed_jobs()) == plan.total_jobs
